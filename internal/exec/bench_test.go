package exec

import (
	"testing"

	"lambdadb/internal/expr"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// buildFilterAggPlan is σ(v > 0.5) → Γ(sum(v)) over the benchmark table.
func buildFilterAggPlan(b testing.TB, rows int) plan.Node {
	s, tbl := bigTable(b, rows, 1000)
	pred := &expr.BinOp{Op: expr.OpGt, Typ: types.Bool,
		L: colRef("v", 1, types.Float64),
		R: &expr.Const{Val: types.NewFloat(float64(rows) / 2)}}
	return &plan.Aggregate{
		Child: &plan.Filter{Child: plan.NewScan(tbl, "", s.Snapshot()), Pred: pred},
		Aggs: []plan.AggSpec{{Func: plan.AggSum,
			Arg: colRef("v", 1, types.Float64), Type: types.Float64, Name: "sum(v)"}},
	}
}

// BenchmarkVectorizedFilterAgg measures the engine's batch-at-a-time path:
// compiled predicate over column vectors, hash-free global aggregate.
func BenchmarkVectorizedFilterAgg(b *testing.B) {
	p := buildFilterAggPlan(b, 1_000_000)
	ctx := NewContext()
	ctx.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowAtATimeFilterAgg is the ablation: the same computation
// performed one row at a time through boxed Values — the execution style
// of the layer-2 UDF world. Comparing against BenchmarkVectorizedFilterAgg
// quantifies the vectorization design choice called out in DESIGN.md §6.
func BenchmarkRowAtATimeFilterAgg(b *testing.B) {
	const rows = 1_000_000
	s, tbl := bigTable(b, rows, 1000)
	snapshot := s.Snapshot()
	threshold := float64(rows) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		err := tbl.Scan(snapshot, func(batch *types.Batch) error {
			n := batch.Len()
			for r := 0; r < n; r++ {
				row := batch.Row(r) // boxes every column into a Value
				if row[1].AsFloat() > threshold {
					sum += row[1].AsFloat()
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAggScaling sweeps the morsel-parallel aggregation
// worker count.
func BenchmarkParallelAggScaling(b *testing.B) {
	s, tbl := bigTable(b, 1_000_000, 16)
	agg := &plan.Aggregate{
		Child:    plan.NewScan(tbl, "", s.Snapshot()),
		Keys:     []expr.Expr{colRef("k", 0, types.Int64)},
		KeyNames: []string{"k"},
		Aggs: []plan.AggSpec{{Func: plan.AggSum,
			Arg: colRef("v", 1, types.Float64), Type: types.Float64, Name: "sum(v)"}},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			ctx := NewContext()
			ctx.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Run(agg, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(workers int) string {
	return "workers=" + string(rune('0'+workers))
}

// BenchmarkParallelJoinScaling sweeps the morsel-parallel hash join worker
// count: partitioned parallel build on 100k rows, morsel-parallel probe
// with 1.6M rows, 1:1 key matches.
func BenchmarkParallelJoinScaling(b *testing.B) {
	s, left := bigTable(b, 100_000, 100_000)
	rs, right := bigTable(b, 1_600_000, 100_000)
	join := &plan.Join{
		Type:      plan.InnerJoin,
		L:         plan.NewScan(left, "l", s.Snapshot()),
		R:         plan.NewScan(right, "r", rs.Snapshot()),
		EquiLeft:  []int{0},
		EquiRight: []int{0},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			ctx := NewContext()
			ctx.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Run(join, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSortScaling sweeps the parallel sort worker count:
// per-worker run generation over a 1M-row scan, k-way loser-tree merge.
func BenchmarkParallelSortScaling(b *testing.B) {
	s, tbl := bigTable(b, 1_000_000, 1000) // v column is unique, k repeats
	srt := &plan.Sort{
		Child: plan.NewScan(tbl, "", s.Snapshot()),
		Keys:  []plan.SortKey{{Col: 1, Desc: true}},
		TopK:  -1,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			ctx := NewContext()
			ctx.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Run(srt, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelTopKScaling isolates the fused ORDER BY ... LIMIT path:
// per-worker bounded heaps mean the 1M-row input is never materialized.
func BenchmarkParallelTopKScaling(b *testing.B) {
	s, tbl := bigTable(b, 1_000_000, 1000)
	srt := &plan.Sort{
		Child: plan.NewScan(tbl, "", s.Snapshot()),
		Keys:  []plan.SortKey{{Col: 1, Desc: true}},
		TopK:  100,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			ctx := NewContext()
			ctx.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Run(srt, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHashJoin measures the equi-join path: build on 100k rows,
// probe with 400k.
func BenchmarkHashJoin(b *testing.B) {
	s, left := bigTable(b, 100_000, 10_000)
	rs, right := bigTable(b, 400_000, 10_000)
	join := &plan.Join{
		Type:      plan.InnerJoin,
		L:         plan.NewScan(left, "l", s.Snapshot()),
		R:         plan.NewScan(right, "r", rs.Snapshot()),
		EquiLeft:  []int{0},
		EquiRight: []int{0},
	}
	ctx := NewContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(join, ctx); err != nil {
			b.Fatal(err)
		}
	}
}
