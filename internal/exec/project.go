package exec

import (
	"lambdadb/internal/expr"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// filterOp drops rows whose predicate is not true (NULL counts as false).
type filterOp struct {
	node  *plan.Filter
	child Operator
	pred  expr.Evaluator
}

func newFilterOp(n *plan.Filter, sc *StatsCollector) (Operator, error) {
	child, err := buildWith(n.Child, sc)
	if err != nil {
		return nil, err
	}
	pred, err := expr.Compile(n.Pred)
	if err != nil {
		return nil, err
	}
	return &filterOp{node: n, child: child, pred: pred}, nil
}

func (f *filterOp) Schema() types.Schema    { return f.child.Schema() }
func (f *filterOp) Open(ctx *Context) error { return f.child.Open(ctx) }
func (f *filterOp) Close() error            { return f.child.Close() }

func (f *filterOp) Next() (*types.Batch, error) {
	for {
		b, err := f.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		out, err := applyFilter(b, f.pred)
		if err != nil {
			return nil, err
		}
		if out != nil && out.Len() > 0 {
			return out, nil
		}
	}
}

// applyFilter evaluates pred over b and returns the surviving rows (b
// itself when all pass, nil when none).
func applyFilter(b *types.Batch, pred expr.Evaluator) (*types.Batch, error) {
	c, err := pred(b)
	if err != nil {
		return nil, err
	}
	n := b.Len()
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !c.IsNull(i) && c.Bools[i] {
			idx = append(idx, i)
		}
	}
	switch len(idx) {
	case 0:
		return nil, nil
	case n:
		return b, nil
	default:
		return b.Gather(idx), nil
	}
}

// projectOp computes output expressions per batch.
type projectOp struct {
	node   *plan.Project
	child  Operator
	evals  []expr.Evaluator
	schema types.Schema
}

func newProjectOp(n *plan.Project, sc *StatsCollector) (Operator, error) {
	child, err := buildWith(n.Child, sc)
	if err != nil {
		return nil, err
	}
	evals := make([]expr.Evaluator, len(n.Exprs))
	for i, e := range n.Exprs {
		ev, err := expr.Compile(e)
		if err != nil {
			return nil, err
		}
		evals[i] = ev
	}
	return &projectOp{node: n, child: child, evals: evals, schema: n.Schema()}, nil
}

func (p *projectOp) Schema() types.Schema    { return p.schema }
func (p *projectOp) Open(ctx *Context) error { return p.child.Open(ctx) }
func (p *projectOp) Close() error            { return p.child.Close() }

func (p *projectOp) Next() (*types.Batch, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	return projectBatch(b, p.evals, p.schema)
}

func projectBatch(b *types.Batch, evals []expr.Evaluator, schema types.Schema) (*types.Batch, error) {
	out := &types.Batch{Schema: schema, Cols: make([]*types.Column, len(evals))}
	for i, ev := range evals {
		c, err := ev(b)
		if err != nil {
			return nil, err
		}
		out.Cols[i] = c
	}
	return out, nil
}
