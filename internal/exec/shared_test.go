package exec

import (
	"sync/atomic"
	"testing"
	"time"

	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// countingNode wraps a Values plan and counts executions through a
// side-channel on the plan (executions happen in valuesOp.Open; we count
// via a custom Relation-free node by instrumenting with a Filter whose
// predicate is pure — instead, simply count through a custom plan node).
type countingNode struct {
	inner *plan.Values
	runs  *atomic.Int64
}

func (c *countingNode) Schema() types.Schema { return c.inner.Schema() }
func (c *countingNode) Quals() []string      { return c.inner.Quals() }
func (c *countingNode) Card() float64        { return c.inner.Card() }
func (c *countingNode) Children() []plan.Node {
	return []plan.Node{c.inner}
}
func (c *countingNode) Explain() string { return "Counting" }

// countingOp executes the inner values and bumps the counter on Open.
type countingOp struct {
	node  *countingNode
	inner Operator
}

func (c *countingOp) Schema() types.Schema { return c.node.Schema() }
func (c *countingOp) Open(ctx *Context) error {
	c.node.runs.Add(1)
	var err error
	c.inner, err = Build(c.node.inner)
	if err != nil {
		return err
	}
	return c.inner.Open(ctx)
}
func (c *countingOp) Next() (*types.Batch, error) { return c.inner.Next() }
func (c *countingOp) Close() error                { return c.inner.Close() }

func init() {
	// Register the counting node with the builder through buildHook.
	buildHook = func(p plan.Node) (Operator, bool) {
		if n, ok := p.(*countingNode); ok {
			return &countingOp{node: n}, true
		}
		return nil, false
	}
}

func oneRowValues() *plan.Values {
	return &plan.Values{
		Sch:  types.Schema{{Name: "x", Type: types.Int64}},
		Rows: [][]types.Value{{types.NewInt(1)}},
	}
}

func TestSharedInvariantComputedOnce(t *testing.T) {
	var runs atomic.Int64
	counted := &countingNode{inner: oneRowValues(), runs: &runs}
	shared := &plan.Shared{Child: counted, Invariant: true}
	// Two references unioned together.
	u := &plan.Union{L: shared, R: shared, All: true}
	ctx := NewContext()
	m, err := Run(u, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 2 {
		t.Fatalf("rows = %d", m.NumRows)
	}
	if runs.Load() != 1 {
		t.Errorf("shared subplan ran %d times, want 1", runs.Load())
	}
}

func TestSharedEpochScopedRecomputes(t *testing.T) {
	var runs atomic.Int64
	counted := &countingNode{inner: oneRowValues(), runs: &runs}
	shared := &plan.Shared{Child: counted, Invariant: false}
	ctx := NewContext()
	if _, err := Run(shared, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(shared, ctx); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("same epoch should cache: runs = %d", runs.Load())
	}
	ctx.BumpEpoch()
	if _, err := Run(shared, ctx); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Errorf("new epoch should recompute: runs = %d", runs.Load())
	}
}

func TestSharedNestedNoDeadlock(t *testing.T) {
	// A shared subplan whose child references another shared subplan; the
	// original implementation held the cache lock during compute and
	// deadlocked here.
	inner := &plan.Shared{Child: oneRowValues(), Invariant: true}
	outer := &plan.Shared{Child: &plan.Union{L: inner, R: inner, All: true}, Invariant: true}
	done := make(chan error, 1)
	go func() {
		_, err := Run(outer, NewContext())
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("nested shared subplans deadlocked")
	}
}
