package exec

import (
	"errors"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// indexScan probes a secondary index (point or range) and emits the
// visible matching rows. It mirrors tableScan's producer-goroutine shape:
// the probe runs in its own goroutine with panic containment, batches flow
// through a small channel, and cancellation is observed per batch.
type indexScan struct {
	node    *plan.IndexScan
	ctx     *Context
	batches chan *types.Batch
	errCh   chan error
	done    chan struct{}
	opened  bool
	rows    int64
}

func newIndexScan(n *plan.IndexScan) *indexScan { return &indexScan{node: n} }

func (s *indexScan) Schema() types.Schema { return s.node.Schema() }

func (s *indexScan) Open(ctx *Context) error {
	s.ctx = ctx
	s.batches = make(chan *types.Batch, 4)
	s.errCh = make(chan error, 1)
	s.done = make(chan struct{})
	s.opened = true
	s.rows = 0
	cancelled := ctx.doneCh()
	go func() {
		defer close(s.batches)
		err := func() (err error) {
			defer containPanic("index-scan", &err)
			yield := func(b *types.Batch) error {
				if err := faultinject.Fire("exec.scan.batch"); err != nil {
					return err
				}
				select {
				case s.batches <- b:
					return nil
				case <-s.done:
					return errScanCancelled
				case <-cancelled:
					return errScanCancelled
				}
			}
			n := s.node
			if n.Eq != nil {
				return n.Rel.IndexLookupEq(n.Index, *n.Eq, n.Snapshot, yield)
			}
			return n.Rel.IndexLookupRange(n.Index, n.Lo, n.Hi, n.LoInc, n.HiInc, n.Snapshot, yield)
		}()
		if err != nil && !errors.Is(err, errScanCancelled) {
			s.errCh <- err
		}
	}()
	return nil
}

func (s *indexScan) Next() (*types.Batch, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case err := <-s.errCh:
		return nil, err
	case b, ok := <-s.batches:
		if !ok {
			select {
			case err := <-s.errCh:
				return nil, err
			default:
			}
			if err := s.ctx.Err(); err != nil {
				return nil, err
			}
			return nil, nil
		}
		s.rows += int64(b.Len())
		return b, nil
	}
}

func (s *indexScan) Close() error {
	if s.opened {
		close(s.done)
		s.opened = false
		if s.ctx != nil && s.ctx.OnIndexProbe != nil {
			s.ctx.OnIndexProbe(s.rows)
		}
	}
	return nil
}
