package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lambdadb/internal/expr"
	"lambdadb/internal/faultinject"
	"lambdadb/internal/plan"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// lifecycleCtx returns an exec context with the given parallelism attached
// to a cancellable Go context.
func lifecycleCtx(workers int) (*Context, context.CancelFunc) {
	goCtx, cancel := context.WithCancel(context.Background())
	ctx := NewContext()
	ctx.Workers = workers
	ctx.AttachContext(goCtx)
	return ctx, cancel
}

func TestCancelBeforeRun(t *testing.T) {
	s, tbl := bigTable(t, 100_000, 1000)
	ctx, cancel := lifecycleCtx(4)
	cancel()
	_, err := Run(plan.NewScan(tbl, "", s.Snapshot()), ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCancelDuringParallelOperators cancels mid-flight while the morsel
// worker pool is running a parallel join, sort, and aggregation, under
// every worker count the pool distinguishes. The fault hook blocks the
// scan producers until cancel has fired, so the query is guaranteed to be
// in flight when cancellation lands (no sleep-based racing).
func TestCancelDuringParallelOperators(t *testing.T) {
	s := storage.NewStore()
	l := nullableTable(t, s, "l", 60_000, 30_000, 0)
	r := nullableTable(t, s, "r", 60_000, 30_000, 0)
	plans := map[string]func() plan.Node{
		"join": func() plan.Node {
			return &plan.Join{
				Type:      plan.InnerJoin,
				L:         plan.NewScan(l, "l", s.Snapshot()),
				R:         plan.NewScan(r, "r", s.Snapshot()),
				EquiLeft:  []int{0},
				EquiRight: []int{0},
			}
		},
		"sort": func() plan.Node {
			return &plan.Sort{
				Child: plan.NewScan(l, "", s.Snapshot()),
				Keys:  []plan.SortKey{{Col: 1, Desc: true}},
				TopK:  -1,
			}
		},
		"aggregate": func() plan.Node {
			return &plan.Aggregate{
				Child:    plan.NewScan(r, "", s.Snapshot()),
				Keys:     []expr.Expr{colRef("k", 0, types.Int64)},
				KeyNames: []string{"k"},
				Aggs: []plan.AggSpec{{Func: plan.AggSum,
					Arg: colRef("v", 1, types.Float64), Type: types.Float64, Name: "sum(v)"}},
			}
		},
	}
	for name, mk := range plans {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				defer faultinject.Reset()
				ctx, cancel := lifecycleCtx(workers)
				released := make(chan struct{})
				var once sync.Once
				faultinject.Set("exec.scan.batch", func() error {
					once.Do(func() {
						cancel()
						close(released)
					})
					<-released
					return nil
				})
				_, err := Run(mk(), ctx)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("want context.Canceled, got %v", err)
				}
			})
		}
	}
}

func TestDeadlineExceededSurfaces(t *testing.T) {
	s, tbl := bigTable(t, 100_000, 1000)
	goCtx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	ctx := NewContext()
	ctx.AttachContext(goCtx)
	_, err := Run(plan.NewScan(tbl, "", s.Snapshot()), ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestMemoryLimitScan(t *testing.T) {
	s, tbl := bigTable(t, 100_000, 1000)
	ctx := NewContext()
	ctx.SetMemoryLimit(4 << 10) // far below the ~1.6 MB the scan holds
	_, err := Run(plan.NewScan(tbl, "", s.Snapshot()), ctx)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want *ResourceError, got %v", err)
	}
	if re.Operator == "" || re.Limit != 4<<10 || re.Requested <= re.Limit {
		t.Fatalf("malformed ResourceError: %+v", re)
	}
}

func TestMemoryLimitNamesJoinBuild(t *testing.T) {
	s := storage.NewStore()
	l := nullableTable(t, s, "l", 40_000, 20_000, 0)
	r := nullableTable(t, s, "r", 40_000, 20_000, 0)
	join := &plan.Join{
		Type:      plan.InnerJoin,
		L:         plan.NewScan(l, "l", s.Snapshot()),
		R:         plan.NewScan(r, "r", s.Snapshot()),
		EquiLeft:  []int{0},
		EquiRight: []int{0},
	}
	ctx := NewContext()
	// Enough for the build-side batches but not the hash table on top.
	ctx.SetMemoryLimit(int64(40_000*16) + hashTableBytesPerRow)
	_, err := Run(join, ctx)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want *ResourceError, got %v", err)
	}
	if re.Operator != "join" {
		t.Fatalf("ResourceError.Operator = %q, want %q", re.Operator, "join")
	}
}

func TestMemoryLimitUnlimitedByDefault(t *testing.T) {
	s, tbl := bigTable(t, 50_000, 1000)
	ctx := NewContext()
	if _, err := Run(plan.NewScan(tbl, "", s.Snapshot()), ctx); err != nil {
		t.Fatalf("no limit set, query must pass: %v", err)
	}
	if got := ctx.MemoryUsed(); got != 0 {
		t.Fatalf("MemoryUsed without a limit = %d, want 0", got)
	}
}

func TestIterateReleasesWorkingTables(t *testing.T) {
	// A long non-appending loop whose working table is one small row: with
	// per-round release of the dropped working table, hundreds of rounds fit
	// in a 4 KB budget. If rounds accumulated, the budget would trip long
	// before MaxDepth.
	one := &plan.Values{
		Sch:  types.Schema{{Name: "x", Type: types.Int64}},
		Rows: [][]types.Value{{types.NewInt(0)}},
	}
	sch := one.Sch
	it := &plan.Iterate{
		Init:     one,
		Step:     &plan.WorkingScan{Name: "iterate", Sch: sch},
		Stop:     &plan.Values{Sch: sch}, // no rows: never stops before MaxDepth
		MaxDepth: 500,
	}
	ctx := NewContext()
	ctx.SetMemoryLimit(1 << 12)
	_, err := Run(it, ctx)
	if errors.As(err, new(*ResourceError)) {
		t.Fatalf("working tables not released: budget tripped with %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "exceeded 500 iterations") {
		t.Fatalf("want MaxDepth exhaustion, got %v", err)
	}
}

func TestPanicContainedSerial(t *testing.T) {
	defer faultinject.Reset()
	s, tbl := bigTable(t, 1000, 10)
	faultinject.Set("exec.scan.batch", func() error { panic("injected operator panic") })
	ctx := NewContext()
	ctx.Workers = 1
	_, err := Run(plan.NewScan(tbl, "", s.Snapshot()), ctx)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError, got %v", err)
	}
	if ie.Panic != "injected operator panic" || len(ie.Stack) == 0 {
		t.Fatalf("malformed InternalError: panic=%v stack=%dB", ie.Panic, len(ie.Stack))
	}
}

func TestPanicContainedInWorkerPool(t *testing.T) {
	defer faultinject.Reset()
	s := storage.NewStore()
	tbl := nullableTable(t, s, "t", 60_000, 1000, 0)
	faultinject.Set("exec.sort.run", func() error { panic("worker panic") })
	srt := &plan.Sort{
		Child: plan.NewScan(tbl, "", s.Snapshot()),
		Keys:  []plan.SortKey{{Col: 0}},
		TopK:  -1,
	}
	ctx := NewContext()
	ctx.Workers = 8
	_, err := Run(srt, ctx)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError from worker pool, got %v", err)
	}
}

// TestPanicDoesNotPoisonContext: after a contained panic the same Context
// (fresh one per query, as the engine does) still executes queries.
func TestPanicThenHealthyQuery(t *testing.T) {
	defer faultinject.Reset()
	s, tbl := bigTable(t, 10_000, 10)
	faultinject.Set("exec.scan.batch", func() error { panic("boom") })
	ctx := NewContext()
	if _, err := Run(plan.NewScan(tbl, "", s.Snapshot()), ctx); err == nil {
		t.Fatal("injected panic must fail the query")
	}
	faultinject.Reset()
	out, err := Run(plan.NewScan(tbl, "", s.Snapshot()), NewContext())
	if err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	if out.NumRows != 10_000 {
		t.Fatalf("rows = %d, want 10000", out.NumRows)
	}
}

func TestScanSentinelIsErrorsIsComparable(t *testing.T) {
	wrapped := fmt.Errorf("outer: %w", errScanCancelled)
	if !errors.Is(wrapped, errScanCancelled) {
		t.Fatal("errScanCancelled must be comparable through wrapping via errors.Is")
	}
}

// TestCancelRacesWorkerPool hammers cancellation against the parallel sort
// pool from a separate goroutine (run under -race via make check): whatever
// the interleaving, the query must return promptly with either a clean
// result or context.Canceled — never hang or corrupt state.
func TestCancelRacesWorkerPool(t *testing.T) {
	s := storage.NewStore()
	tbl := nullableTable(t, s, "t", 120_000, 5000, 0)
	for i := 0; i < 6; i++ {
		ctx, cancel := lifecycleCtx(8)
		done := make(chan error, 1)
		go func() {
			_, err := Run(&plan.Sort{
				Child: plan.NewScan(tbl, "", s.Snapshot()),
				Keys:  []plan.SortKey{{Col: 1, Desc: true}},
				TopK:  -1,
			}, ctx)
			done <- err
		}()
		time.Sleep(time.Duration(i) * 200 * time.Microsecond)
		cancel()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("iteration %d: unexpected error %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: cancelled query hung", i)
		}
	}
}
