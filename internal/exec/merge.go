package exec

import (
	"lambdadb/internal/types"
)

// loserTree is a tournament tree that k-way merges sorted runs of rows.
// Internal nodes hold the losers of their subtree's comparisons and node[0]
// holds the overall winner, so advancing costs one leaf-to-root replay
// (log k comparisons) per emitted row. Ties break toward the lower run
// index: runs generated from ordered input ranges therefore merge stably.
type loserTree struct {
	less func(a, b []types.Value) bool
	runs [][][]types.Value
	pos  []int // next unconsumed row of each run
	node []int // node[1..k-1]: losing run indices; node[0]: winner
	k    int
}

func newLoserTree(runs [][][]types.Value, less func(a, b []types.Value) bool) *loserTree {
	// Pad the run count to a power of two with empty runs (which lose every
	// comparison) so the implicit tree is complete.
	k := 1
	for k < len(runs) {
		k <<= 1
	}
	padded := make([][][]types.Value, k)
	copy(padded, runs)
	t := &loserTree{less: less, runs: padded, pos: make([]int, k), node: make([]int, k), k: k}
	for i := range t.node {
		t.node[i] = -1
	}
	for r := 0; r < k; r++ {
		t.seed(r)
	}
	return t
}

// seed plays run r into the partially built tree: an empty node absorbs the
// current winner; an occupied node plays a match whose winner moves up. The
// last seed reaches the root and sets node[0].
func (t *loserTree) seed(r int) {
	winner := r
	for i := (r + t.k) / 2; i > 0; i /= 2 {
		if t.node[i] == -1 {
			t.node[i] = winner
			return
		}
		if t.beats(t.node[i], winner) {
			t.node[i], winner = winner, t.node[i]
		}
	}
	t.node[0] = winner
}

// current returns run r's next row, or nil when the run is exhausted.
func (t *loserTree) current(r int) []types.Value {
	if t.pos[r] >= len(t.runs[r]) {
		return nil
	}
	return t.runs[r][t.pos[r]]
}

// beats reports whether run a's current row is emitted before run b's.
func (t *loserTree) beats(a, b int) bool {
	if a == -1 {
		return false
	}
	if b == -1 {
		return true
	}
	ra, rb := t.current(a), t.current(b)
	if ra == nil {
		return false
	}
	if rb == nil {
		return true
	}
	if t.less(ra, rb) {
		return true
	}
	if t.less(rb, ra) {
		return false
	}
	return a < b
}

// replay pushes run r from its leaf to the root: at every internal node the
// winner moves up and the loser stays.
func (t *loserTree) replay(r int) {
	winner := r
	for i := (r + t.k) / 2; i > 0; i /= 2 {
		if t.beats(t.node[i], winner) {
			t.node[i], winner = winner, t.node[i]
		}
	}
	t.node[0] = winner
}

// next returns the globally smallest remaining row, or nil when every run
// is exhausted.
func (t *loserTree) next() []types.Value {
	w := t.node[0]
	if w == -1 {
		return nil
	}
	row := t.current(w)
	if row == nil {
		return nil
	}
	t.pos[w]++
	t.replay(w)
	return row
}

// mergeRuns k-way merges sorted runs into one sorted row slice.
func mergeRuns(runs [][][]types.Value, less func(a, b []types.Value) bool) [][]types.Value {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([][]types.Value, 0, total)
	t := newLoserTree(runs, less)
	for row := t.next(); row != nil; row = t.next() {
		out = append(out, row)
	}
	return out
}
