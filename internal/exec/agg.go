package exec

import (
	"math"

	"lambdadb/internal/expr"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// aggState accumulates one aggregate for one group. Numeric sums are kept
// in both integer and float domains depending on the argument type.
type aggState struct {
	count int64
	sumI  int64
	sumF  float64
	sumSq float64 // for stddev/variance
	min   types.Value
	max   types.Value
	seen  bool
}

// group holds a group's key values and aggregate states.
type group struct {
	keys   []types.Value
	states []aggState
}

// aggHash is a chained hash table over groups.
type aggHash struct {
	buckets map[uint64][]*group
	groups  []*group // insertion order
	nAggs   int
}

func newAggHash(nAggs int) *aggHash {
	return &aggHash{buckets: map[uint64][]*group{}, nAggs: nAggs}
}

// lookup returns the group for the given key row, creating it on demand.
func (h *aggHash) lookup(keys []types.Value) *group {
	var hv uint64
	for _, k := range keys {
		if k.Null {
			// GROUP BY treats NULLs as one group; give them a fixed hash.
			hv = types.HashCombine(hv, 0x9e3779b97f4a7c15)
		} else {
			hv = types.HashCombine(hv, k.Hash())
		}
	}
	for _, g := range h.buckets[hv] {
		if groupKeysEqual(g.keys, keys) {
			return g
		}
	}
	g := &group{keys: append([]types.Value{}, keys...), states: make([]aggState, h.nAggs)}
	h.buckets[hv] = append(h.buckets[hv], g)
	h.groups = append(h.groups, g)
	return g
}

// groupKeysEqual compares group keys with NULL = NULL (SQL GROUP BY
// semantics, unlike ordinary equality).
func groupKeysEqual(a, b []types.Value) bool {
	for i := range a {
		if a[i].Null != b[i].Null {
			return false
		}
		if !a[i].Null && !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// update folds one input value into an aggregate state.
func (s *aggState) update(f plan.AggFunc, v types.Value) {
	if f == plan.AggCountStar {
		s.count++
		return
	}
	if v.Null {
		return
	}
	switch f {
	case plan.AggCount:
		s.count++
	case plan.AggSum, plan.AggAvg:
		s.count++
		if v.T == types.Int64 {
			s.sumI += v.I
		} else {
			s.sumF += v.F
		}
	case plan.AggStddev, plan.AggVariance:
		s.count++
		f := v.AsFloat()
		s.sumF += f
		s.sumSq += f * f
	case plan.AggMin:
		if !s.seen || v.Compare(s.min) < 0 {
			s.min = v
		}
		s.seen = true
	case plan.AggMax:
		if !s.seen || v.Compare(s.max) > 0 {
			s.max = v
		}
		s.seen = true
	}
}

// merge folds another partial state into s (parallel aggregation).
func (s *aggState) merge(f plan.AggFunc, o aggState) {
	switch f {
	case plan.AggCountStar, plan.AggCount:
		s.count += o.count
	case plan.AggSum, plan.AggAvg, plan.AggStddev, plan.AggVariance:
		s.count += o.count
		s.sumI += o.sumI
		s.sumF += o.sumF
		s.sumSq += o.sumSq
	case plan.AggMin:
		if o.seen && (!s.seen || o.min.Compare(s.min) < 0) {
			s.min = o.min
		}
		s.seen = s.seen || o.seen
	case plan.AggMax:
		if o.seen && (!s.seen || o.max.Compare(s.max) > 0) {
			s.max = o.max
		}
		s.seen = s.seen || o.seen
	}
}

// result produces the final value of an aggregate state.
func (s *aggState) result(spec plan.AggSpec) types.Value {
	switch spec.Func {
	case plan.AggCountStar, plan.AggCount:
		return types.NewInt(s.count)
	case plan.AggSum:
		if s.count == 0 {
			return types.NewNull(spec.Type)
		}
		if spec.Type == types.Int64 {
			return types.NewInt(s.sumI)
		}
		return types.NewFloat(s.sumF + float64(s.sumI))
	case plan.AggAvg:
		if s.count == 0 {
			return types.NewNull(types.Float64)
		}
		return types.NewFloat((s.sumF + float64(s.sumI)) / float64(s.count))
	case plan.AggStddev, plan.AggVariance:
		// Population variance: E[x²] − E[x]², floored at zero against
		// floating-point cancellation.
		if s.count == 0 {
			return types.NewNull(types.Float64)
		}
		n := float64(s.count)
		mean := s.sumF / n
		variance := s.sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		if spec.Func == plan.AggVariance {
			return types.NewFloat(variance)
		}
		return types.NewFloat(math.Sqrt(variance))
	case plan.AggMin:
		if !s.seen {
			return types.NewNull(spec.Type)
		}
		return s.min
	case plan.AggMax:
		if !s.seen {
			return types.NewNull(spec.Type)
		}
		return s.max
	}
	return types.NewNull(spec.Type)
}

// aggOp is the hash-aggregation operator. When its input pipeline is rooted
// at a base-table scan it runs morsel-parallel: each worker aggregates a
// row range into a private hash table, and the tables are merged at the
// end — the thread-local pattern the paper describes for its analytical
// operators (Section 6.1).
type aggOp struct {
	node   *plan.Aggregate
	schema types.Schema
	result *Materialized
	it     matIterator
}

func newAggOp(n *plan.Aggregate) (Operator, error) {
	return &aggOp{node: n, schema: n.Schema()}, nil
}

func (a *aggOp) Schema() types.Schema { return a.schema }

func (a *aggOp) Open(ctx *Context) error {
	parts := splitParallel(a.node.Child, ctx.workers(), ctx)
	var total *aggHash
	var err error
	if len(parts) > 1 {
		total, err = a.aggregateParallel(ctx, parts)
	} else {
		total, err = a.aggregateSerial(ctx, a.node.Child)
	}
	if err != nil {
		return err
	}
	a.result = a.finalize(total)
	a.it = matIterator{mat: a.result}
	return nil
}

func (a *aggOp) aggregateSerial(ctx *Context, child plan.Node) (*aggHash, error) {
	op, err := buildFor(child, ctx)
	if err != nil {
		return nil, err
	}
	return a.consume(ctx, op)
}

func (a *aggOp) aggregateParallel(ctx *Context, parts []plan.Node) (*aggHash, error) {
	results := make([]*aggHash, len(parts))
	err := runParts(ctx, len(parts), func(i int) error {
		op, err := buildFor(parts[i], ctx)
		if err != nil {
			return err
		}
		results[i], err = a.consume(ctx, op)
		return err
	})
	if err != nil {
		return nil, err
	}
	// Merge worker tables into the first.
	total := results[0]
	for _, part := range results[1:] {
		for _, g := range part.groups {
			dst := total.lookup(g.keys)
			for ai := range dst.states {
				dst.states[ai].merge(a.node.Aggs[ai].Func, g.states[ai])
			}
		}
	}
	return total, nil
}

// consume drains op, updating a fresh hash table.
func (a *aggOp) consume(ctx *Context, op Operator) (*aggHash, error) {
	keyEvals := make([]expr.Evaluator, len(a.node.Keys))
	for i, k := range a.node.Keys {
		ev, err := expr.Compile(k)
		if err != nil {
			return nil, err
		}
		keyEvals[i] = ev
	}
	argEvals := make([]expr.Evaluator, len(a.node.Aggs))
	for i, g := range a.node.Aggs {
		if g.Arg == nil {
			continue
		}
		ev, err := expr.Compile(g.Arg)
		if err != nil {
			return nil, err
		}
		argEvals[i] = ev
	}

	table := newAggHash(len(a.node.Aggs))
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()

	keyBuf := make([]types.Value, len(keyEvals))
	var global *group
	if len(keyEvals) == 0 {
		global = table.lookup(nil)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		keyCols := make([]*types.Column, len(keyEvals))
		for i, ev := range keyEvals {
			if keyCols[i], err = ev(b); err != nil {
				return nil, err
			}
		}
		argCols := make([]*types.Column, len(argEvals))
		for i, ev := range argEvals {
			if ev == nil {
				continue
			}
			if argCols[i], err = ev(b); err != nil {
				return nil, err
			}
		}
		n := b.Len()
		for r := 0; r < n; r++ {
			g := global
			if g == nil {
				for i, kc := range keyCols {
					keyBuf[i] = kc.Value(r)
				}
				g = table.lookup(keyBuf)
			}
			for ai := range a.node.Aggs {
				var v types.Value
				if argCols[ai] != nil {
					v = argCols[ai].Value(r)
				}
				g.states[ai].update(a.node.Aggs[ai].Func, v)
			}
		}
	}
	return table, nil
}

// finalize converts the hash table into output batches. Global aggregation
// (no keys) over empty input still yields one row.
func (a *aggOp) finalize(table *aggHash) *Materialized {
	out := &Materialized{Schema: a.schema}
	batch := types.NewBatch(a.schema)
	emit := func(g *group) {
		row := make([]types.Value, 0, len(a.schema))
		row = append(row, g.keys...)
		for ai, spec := range a.node.Aggs {
			row = append(row, g.states[ai].result(spec))
		}
		batch.AppendRow(row)
		if batch.Len() >= types.BatchSize {
			out.Append(batch)
			batch = types.NewBatch(a.schema)
		}
	}
	for _, g := range table.groups {
		emit(g)
	}
	out.Append(batch)
	return out
}

func (a *aggOp) Next() (*types.Batch, error) { return a.it.next(), nil }
func (a *aggOp) Close() error                { return nil }
