package exec

import (
	"fmt"
	"time"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// iterateOp implements the paper's non-appending iteration (Section 5.1):
//
//	working := Init
//	while Stop(working) yields no rows:
//	    working := Step(working)
//	return working
//
// Only the current (and the just-computed next) working table are ever
// materialized — the memory advantage over recursive CTEs that Section 5.1
// argues for. Step and Stop are logical subplans re-instantiated each
// iteration so the optimizer's plan is reused while operator state is not.
//
// The iteration context (including ctx.Workers) is passed through to every
// Init/Step/Stop execution, and working tables bound here are splittable
// into row-range morsels (WorkingScan Lo/Hi), so joins, sorts, and
// aggregates inside the loop body run morsel-parallel each round.
type iterateOp struct {
	node *plan.Iterate
	it   matIterator
}

func newIterateOp(n *plan.Iterate) *iterateOp { return &iterateOp{node: n} }

func (i *iterateOp) Schema() types.Schema { return i.node.Schema() }

func (i *iterateOp) Open(ctx *Context) error {
	working, err := Run(i.node.Init, ctx)
	if err != nil {
		return fmt.Errorf("iterate init: %w", err)
	}
	saved, had := ctx.Bindings["iterate"]
	defer func() {
		if had {
			ctx.Bindings["iterate"] = saved
		} else {
			delete(ctx.Bindings, "iterate")
		}
	}()

	sc := ctx.statsCollector()
	for depth := 0; ; depth++ {
		// One cancellation check per round: a cancelled ITERATE aborts
		// before starting the next iteration, and the deferred restore above
		// unbinds the working table so the context stays reusable.
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := faultinject.Fire("exec.iterate.round"); err != nil {
			return err
		}
		if depth >= i.node.MaxDepth {
			return fmt.Errorf("iterate: exceeded %d iterations (possible infinite loop)", i.node.MaxDepth)
		}
		roundStart := time.Now()
		ctx.BumpEpoch()
		ctx.Bindings["iterate"] = working
		stop, err := Run(i.node.Stop, ctx)
		if err != nil {
			return fmt.Errorf("iterate stop: %w", err)
		}
		if stop.NumRows > 0 {
			break
		}
		next, err := Run(i.node.Step, ctx)
		if err != nil {
			return fmt.Errorf("iterate step: %w", err)
		}
		if sc != nil {
			sc.AddIteration(i.node, IterationStat{
				Round: depth + 1,
				Rows:  int64(next.NumRows),
				Delta: float64(next.NumRows - working.NumRows),
				Nanos: time.Since(roundStart).Nanoseconds(),
			})
		}
		// Non-appending: the previous working table is dropped here; at
		// most two iterations' worth of tuples are alive at once. Return its
		// bytes to the memory budget so long loops with bounded working sets
		// never trip the limit.
		ctx.release(matBytes(working))
		working = next
	}
	i.it = matIterator{mat: working}
	return nil
}

func (i *iterateOp) Next() (*types.Batch, error) { return i.it.next(), nil }
func (i *iterateOp) Close() error                { return nil }

// recursiveOp implements SQL:1999 recursive CTEs with appending semantics:
// the result accumulates every iteration's tuples. UNION (without ALL)
// deduplicates globally and reaches a fixpoint; UNION ALL stops when the
// recursive term produces no rows.
type recursiveOp struct {
	node *plan.RecursiveCTE
	it   matIterator
}

func newRecursiveOp(n *plan.RecursiveCTE) *recursiveOp { return &recursiveOp{node: n} }

func (r *recursiveOp) Schema() types.Schema { return r.node.Schema() }

func (r *recursiveOp) Open(ctx *Context) error {
	init, err := Run(r.node.Init, ctx)
	if err != nil {
		return fmt.Errorf("recursive CTE %s init: %w", r.node.Name, err)
	}

	acc := &Materialized{Schema: init.Schema}
	var seen *rowSet
	if !r.node.All {
		seen = newRowSet()
	}

	working := &Materialized{Schema: init.Schema}
	appendDeduped := func(src *Materialized, dst ...*Materialized) {
		for _, b := range src.Batches {
			if seen == nil {
				for _, d := range dst {
					d.Append(b)
				}
				continue
			}
			filtered := types.NewBatch(src.Schema)
			n := b.Len()
			for i := 0; i < n; i++ {
				row := b.Row(i)
				if seen.add(row) {
					filtered.AppendRow(row)
				}
			}
			if filtered.Len() > 0 {
				for _, d := range dst {
					d.Append(filtered)
				}
			}
		}
	}
	appendDeduped(init, acc, working)

	saved, had := ctx.Bindings[r.node.Name]
	defer func() {
		if had {
			ctx.Bindings[r.node.Name] = saved
		} else {
			delete(ctx.Bindings, r.node.Name)
		}
	}()

	sc := ctx.statsCollector()
	for depth := 0; working.NumRows > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := faultinject.Fire("exec.iterate.round"); err != nil {
			return err
		}
		if depth >= r.node.MaxDepth {
			return fmt.Errorf("recursive CTE %s: exceeded %d iterations (possible infinite loop)",
				r.node.Name, r.node.MaxDepth)
		}
		roundStart := time.Now()
		ctx.BumpEpoch()
		ctx.Bindings[r.node.Name] = working
		delta, err := Run(r.node.Rec, ctx)
		if err != nil {
			return fmt.Errorf("recursive CTE %s: %w", r.node.Name, err)
		}
		next := &Materialized{Schema: acc.Schema}
		appendDeduped(delta, acc, next)
		working = next
		if sc != nil {
			sc.AddIteration(r.node, IterationStat{
				Round: depth + 1,
				Rows:  int64(next.NumRows),
				Delta: float64(next.NumRows),
				Nanos: time.Since(roundStart).Nanoseconds(),
			})
		}
	}
	r.it = matIterator{mat: acc}
	return nil
}

func (r *recursiveOp) Next() (*types.Batch, error) { return r.it.next(), nil }
func (r *recursiveOp) Close() error                { return nil }
