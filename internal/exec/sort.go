package exec

import (
	"sort"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// sortOp materializes its input and emits it in key order. When the input
// pipeline is splittable it runs morsel-parallel: each worker produces a
// sorted run (or a bounded top-k heap when the optimizer fused a LIMIT),
// and the runs meet in a k-way loser-tree merge. Inputs that cannot be
// split (join results, aggregates) are drained serially but still sorted
// with parallel chunk runs plus the same merge.
type sortOp struct {
	node   *plan.Sort
	schema types.Schema
	it     matIterator
}

func newSortOp(n *plan.Sort) (Operator, error) {
	return &sortOp{node: n, schema: n.Schema()}, nil
}

func (s *sortOp) Schema() types.Schema { return s.schema }

func (s *sortOp) Open(ctx *Context) error {
	keys := s.node.Keys
	less := func(a, b []types.Value) bool {
		for _, k := range keys {
			c := a[k.Col].Compare(b[k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	workers := ctx.workers()
	topK := s.node.TopK

	var runs [][][]types.Value
	if parts := splitParallel(s.node.Child, workers, ctx); len(parts) > 1 {
		// Parallel run generation: one sorted run per morsel. With a fused
		// top-k each worker streams its morsel through a private bounded
		// heap, so ORDER BY ... LIMIT never materializes the full input.
		runs = make([][][]types.Value, len(parts))
		err := runParts(ctx, len(parts), func(i int) error {
			if err := faultinject.Fire("exec.sort.run"); err != nil {
				return err
			}
			op, err := buildFor(parts[i], ctx)
			if err != nil {
				return err
			}
			rows, err := drainSorted(op, ctx, topK, less)
			if err != nil {
				return err
			}
			runs[i] = rows
			return nil
		})
		if err != nil {
			return err
		}
	} else if topK >= 0 {
		// Serial streamed top-k (unsplittable input): bounded heap, then
		// sort the survivors.
		op, err := buildFor(s.node.Child, ctx)
		if err != nil {
			return err
		}
		rows, err := drainSorted(op, ctx, topK, less)
		if err != nil {
			return err
		}
		runs = [][][]types.Value{rows}
	} else {
		// Full sort of an unsplittable input: drain serially, then sort
		// contiguous chunks on the worker pool and merge.
		mat, err := Run(s.node.Child, ctx)
		if err != nil {
			return err
		}
		rows := mat.Rows()
		runs = chunkRuns(rows, workers)
		err = runParts(ctx, len(runs), func(i int) error {
			if err := faultinject.Fire("exec.sort.run"); err != nil {
				return err
			}
			r := runs[i]
			sort.SliceStable(r, func(a, b int) bool { return less(r[a], r[b]) })
			return nil
		})
		if err != nil {
			return err
		}
	}

	rows := mergeRuns(runs, less)
	if topK >= 0 && int64(len(rows)) > topK {
		rows = rows[:topK]
	}

	out := &Materialized{Schema: s.schema}
	batch := types.NewBatch(s.schema)
	for _, r := range rows {
		batch.AppendRow(r)
		if batch.Len() >= types.BatchSize {
			out.Append(batch)
			batch = types.NewBatch(s.schema)
		}
	}
	out.Append(batch)
	s.it = matIterator{mat: out}
	return nil
}

// drainSorted opens and drains op into a sorted row run. With k >= 0 the
// rows stream through a bounded max-heap whose root is the worst kept row,
// so only k rows are ever held. Fully-retained runs (k < 0) are charged
// against the query memory budget per input batch.
func drainSorted(op Operator, ctx *Context, k int64, less func(a, b []types.Value) bool) ([][]types.Value, error) {
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, err
	}
	var rows [][]types.Value
	h := &rowHeap{less: less}
	for {
		if err := ctx.Err(); err != nil {
			op.Close()
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		if k < 0 {
			if err := ctx.charge("sort", batchBytes(b)); err != nil {
				op.Close()
				return nil, err
			}
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if k < 0 {
				rows = append(rows, row)
				continue
			}
			switch {
			case int64(len(h.rows)) < k:
				h.push(row)
			case k > 0 && less(row, h.rows[0]):
				h.replaceTop(row)
			}
		}
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	if k >= 0 {
		rows = h.rows
	}
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	return rows, nil
}

// chunkRuns splits rows into at most `workers` contiguous chunks of at
// least minRowsPerWorker rows each (a single chunk below that), preserving
// input order across chunk boundaries for merge stability.
func chunkRuns(rows [][]types.Value, workers int) [][][]types.Value {
	n := len(rows)
	parts := workers
	if parts > 1 && n < 2*minRowsPerWorker {
		parts = 1
	}
	if parts > n/minRowsPerWorker && parts > 1 {
		parts = n / minRowsPerWorker
	}
	if parts <= 1 {
		return [][][]types.Value{rows}
	}
	chunk := (n + parts - 1) / parts
	out := make([][][]types.Value, 0, parts)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, rows[lo:hi:hi])
	}
	return out
}

func (s *sortOp) Next() (*types.Batch, error) { return s.it.next(), nil }
func (s *sortOp) Close() error                { return nil }

// limitOp skips Offset rows and passes through at most N.
type limitOp struct {
	node      *plan.Limit
	child     Operator
	toSkip    int64
	remaining int64
}

func newLimitOp(n *plan.Limit, sc *StatsCollector) (Operator, error) {
	child, err := buildWith(n.Child, sc)
	if err != nil {
		return nil, err
	}
	return &limitOp{node: n, child: child}, nil
}

func (l *limitOp) Schema() types.Schema { return l.child.Schema() }

func (l *limitOp) Open(ctx *Context) error {
	l.toSkip = l.node.Offset
	l.remaining = l.node.N
	if l.remaining < 0 {
		l.remaining = int64(^uint64(0) >> 1) // effectively unlimited
	}
	return l.child.Open(ctx)
}

func (l *limitOp) Next() (*types.Batch, error) {
	for l.remaining > 0 {
		b, err := l.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		n := int64(b.Len())
		if l.toSkip >= n {
			l.toSkip -= n
			continue
		}
		if l.toSkip > 0 {
			b = b.Slice(int(l.toSkip), int(n))
			n -= l.toSkip
			l.toSkip = 0
		}
		if n > l.remaining {
			b = b.Slice(0, int(l.remaining))
			n = l.remaining
		}
		l.remaining -= n
		return b, nil
	}
	return nil, nil
}

func (l *limitOp) Close() error { return l.child.Close() }

// rowSet deduplicates full rows (Distinct, UNION).
type rowSet struct {
	buckets map[uint64][][]types.Value
}

func newRowSet() *rowSet { return &rowSet{buckets: map[uint64][][]types.Value{}} }

// add inserts the row and reports whether it was new.
func (s *rowSet) add(row []types.Value) bool {
	var h uint64
	for _, v := range row {
		if v.Null {
			h = types.HashCombine(h, 0x9e3779b97f4a7c15)
		} else {
			h = types.HashCombine(h, v.Hash())
		}
	}
	for _, existing := range s.buckets[h] {
		if groupKeysEqual(existing, row) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], append([]types.Value{}, row...))
	return true
}

// distinctOp drops duplicate rows.
type distinctOp struct {
	child Operator
	seen  *rowSet
}

func newDistinctOp(n *plan.Distinct, sc *StatsCollector) (Operator, error) {
	child, err := buildWith(n.Child, sc)
	if err != nil {
		return nil, err
	}
	return &distinctOp{child: child}, nil
}

func (d *distinctOp) Schema() types.Schema { return d.child.Schema() }

func (d *distinctOp) Open(ctx *Context) error {
	d.seen = newRowSet()
	return d.child.Open(ctx)
}

func (d *distinctOp) Next() (*types.Batch, error) {
	for {
		b, err := d.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		out := types.NewBatch(b.Schema)
		n := b.Len()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if d.seen.add(row) {
				out.AppendRow(row)
			}
		}
		if out.Len() > 0 {
			return out, nil
		}
	}
}

func (d *distinctOp) Close() error { return d.child.Close() }

// unionOp concatenates two inputs; without ALL it deduplicates.
type unionOp struct {
	node    *plan.Union
	l, r    Operator
	onRight bool
	seen    *rowSet
}

func newUnionOp(n *plan.Union, sc *StatsCollector) (Operator, error) {
	l, err := buildWith(n.L, sc)
	if err != nil {
		return nil, err
	}
	r, err := buildWith(n.R, sc)
	if err != nil {
		return nil, err
	}
	return &unionOp{node: n, l: l, r: r}, nil
}

func (u *unionOp) Schema() types.Schema { return u.l.Schema() }

func (u *unionOp) Open(ctx *Context) error {
	u.onRight = false
	if !u.node.All {
		u.seen = newRowSet()
	}
	if err := u.l.Open(ctx); err != nil {
		return err
	}
	return u.r.Open(ctx)
}

func (u *unionOp) Next() (*types.Batch, error) {
	for {
		src := u.l
		if u.onRight {
			src = u.r
		}
		b, err := src.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if u.onRight {
				return nil, nil
			}
			u.onRight = true
			continue
		}
		if u.seen == nil {
			// UNION ALL: left batches pass through unchanged, right batches
			// are re-labeled with the unified schema.
			if b.Schema.Equal(u.Schema()) {
				return b, nil
			}
			return &types.Batch{Schema: u.Schema(), Cols: b.Cols}, nil
		}
		out := types.NewBatch(u.Schema())
		n := b.Len()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if u.seen.add(row) {
				out.AppendRow(row)
			}
		}
		if out.Len() > 0 {
			return out, nil
		}
	}
}

func (u *unionOp) Close() error {
	err1 := u.l.Close()
	err2 := u.r.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// rowHeap is a max-heap of rows under the sort order: the root is the
// worst kept row, so a better candidate replaces it in O(log k).
type rowHeap struct {
	rows [][]types.Value
	less func(a, b []types.Value) bool
}

func (h *rowHeap) push(row []types.Value) {
	h.rows = append(h.rows, row)
	i := len(h.rows) - 1
	for i > 0 {
		parent := (i - 1) / 2
		// Sift up while the child is worse (greater) than its parent.
		if !h.less(h.rows[parent], h.rows[i]) {
			break
		}
		h.rows[parent], h.rows[i] = h.rows[i], h.rows[parent]
		i = parent
	}
}

func (h *rowHeap) replaceTop(row []types.Value) {
	h.rows[0] = row
	i := 0
	n := len(h.rows)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.less(h.rows[worst], h.rows[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.less(h.rows[worst], h.rows[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.rows[i], h.rows[worst] = h.rows[worst], h.rows[i]
		i = worst
	}
}
