package exec

import (
	"errors"
	"fmt"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// tableScan reads a stored table (optionally a physical row range).
type tableScan struct {
	node    *plan.Scan
	ctx     *Context
	batches chan *types.Batch
	errCh   chan error
	done    chan struct{}
	opened  bool
}

func newTableScan(n *plan.Scan) *tableScan { return &tableScan{node: n} }

func (s *tableScan) Schema() types.Schema { return s.node.Schema() }

func (s *tableScan) Open(ctx *Context) error {
	s.ctx = ctx
	s.batches = make(chan *types.Batch, 4)
	s.errCh = make(chan error, 1)
	s.done = make(chan struct{})
	s.opened = true
	lo, hi := s.node.Lo, s.node.Hi
	if hi < 0 {
		hi = s.node.Rel.PhysicalRows()
	}
	cancelled := ctx.doneCh()
	go func() {
		defer close(s.batches)
		// The producer runs outside the Drain/runParts containment
		// boundaries, so it carries its own: a panic here becomes an
		// *InternalError on errCh instead of killing the process.
		err := func() (err error) {
			defer containPanic("scan", &err)
			return s.node.Rel.ScanRange(s.node.Snapshot, lo, hi, func(b *types.Batch) error {
				if err := faultinject.Fire("exec.scan.batch"); err != nil {
					return err
				}
				select {
				case s.batches <- b:
					return nil
				case <-s.done:
					return errScanCancelled
				case <-cancelled:
					return errScanCancelled
				}
			})
		}()
		if err != nil && !errors.Is(err, errScanCancelled) {
			s.errCh <- err
		}
	}()
	return nil
}

func (s *tableScan) Next() (*types.Batch, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case err := <-s.errCh:
		return nil, err
	case b, ok := <-s.batches:
		if !ok {
			select {
			case err := <-s.errCh:
				return nil, err
			default:
			}
			// The producer also shuts down on cancellation; report that as
			// the context error, never as a clean end of stream.
			if err := s.ctx.Err(); err != nil {
				return nil, err
			}
			return nil, nil
		}
		return b, nil
	}
}

func (s *tableScan) Close() error {
	if s.opened {
		close(s.done)
		s.opened = false
	}
	return nil
}

// workingScan reads the current contents of a named working table from the
// execution context (ITERATE / recursive CTE bodies).
type workingScan struct {
	node *plan.WorkingScan
	ctx  *Context
	it   matIterator
}

func newWorkingScan(n *plan.WorkingScan) *workingScan { return &workingScan{node: n} }

func (s *workingScan) Schema() types.Schema { return s.node.Sch }

func (s *workingScan) Open(ctx *Context) error {
	s.ctx = ctx
	mat, ok := ctx.Bindings[s.node.Name]
	if !ok {
		return fmt.Errorf("working table %q is not bound", s.node.Name)
	}
	if s.node.Lo > 0 || s.node.Hi > 0 {
		// Morsel-restricted scan over the bound working table.
		mat = &Materialized{Schema: mat.Schema, Batches: mat.SliceRows(s.node.Lo, s.node.Hi)}
	}
	s.it = matIterator{mat: mat}
	return nil
}

func (s *workingScan) Next() (*types.Batch, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	return s.it.next(), nil
}
func (s *workingScan) Close() error { return nil }

// valuesOp emits literal rows.
type valuesOp struct {
	node *plan.Values
	done bool
}

func newValuesOp(n *plan.Values) *valuesOp { return &valuesOp{node: n} }

func (v *valuesOp) Schema() types.Schema    { return v.node.Sch }
func (v *valuesOp) Open(ctx *Context) error { v.done = false; return nil }

func (v *valuesOp) Next() (*types.Batch, error) {
	if v.done || len(v.node.Rows) == 0 {
		return nil, nil
	}
	v.done = true
	b := types.NewBatch(v.node.Sch)
	for _, row := range v.node.Rows {
		b.AppendRow(row)
	}
	return b, nil
}

func (v *valuesOp) Close() error { return nil }
