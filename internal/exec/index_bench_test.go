package exec

import (
	"testing"

	"lambdadb/internal/expr"
	"lambdadb/internal/plan"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// indexedBigTable is bigTable plus an ordered secondary index on k.
func indexedBigTable(t testing.TB, n, mod int) (*storage.Store, *storage.Table) {
	t.Helper()
	s, tbl := bigTable(t, n, mod)
	if err := s.CreateIndex(storage.IndexDef{
		Name: "big_k", Table: "big", Column: "k", Kind: storage.OrderedIndex,
	}); err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

// BenchmarkIndexPointLookup measures a selective point query (k = const,
// one matching row in 200k) through the full scan path versus the ordered
// secondary index. The index probe touches one posting list instead of the
// whole column; the target speedup is >= 10x.
func BenchmarkIndexPointLookup(b *testing.B) {
	const rows = 200_000
	target := int64(123_456)
	eq := types.NewInt(target)
	pred := &expr.BinOp{Op: expr.OpEq, Typ: types.Bool,
		L: colRef("k", 0, types.Int64),
		R: &expr.Const{Val: eq}}

	b.Run("fullscan", func(b *testing.B) {
		s, tbl := bigTable(b, rows, rows) // k unique: i % rows == i
		p := &plan.Filter{Child: plan.NewScan(tbl, "", s.Snapshot()), Pred: pred}
		ctx := NewContext()
		ctx.Workers = 1
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := Run(p, ctx)
			if err != nil {
				b.Fatal(err)
			}
			if m.NumRows != 1 {
				b.Fatalf("rows = %d, want 1", m.NumRows)
			}
		}
	})

	b.Run("indexed", func(b *testing.B) {
		s, tbl := indexedBigTable(b, rows, rows)
		p := &plan.IndexScan{Rel: tbl, Snapshot: s.Snapshot(),
			Index: "big_k", Column: "k", Kind: "ORDERED", Eq: &eq, EstRows: 1}
		ctx := NewContext()
		ctx.Workers = 1
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := Run(p, ctx)
			if err != nil {
				b.Fatal(err)
			}
			if m.NumRows != 1 {
				b.Fatalf("rows = %d, want 1", m.NumRows)
			}
		}
	})
}

// joinOrderTables builds the fact/mid/dim chain used by BenchmarkJoinOrder:
// fact(200k) -> mid(10k) -> dim(100), with a selective filter on dim.
func joinOrderTables(t testing.TB) (*storage.Store, [3]*storage.Table) {
	t.Helper()
	s := storage.NewStore()
	mk := func(name string, schema types.Schema, n int, fill func(b *types.Batch, i int)) *storage.Table {
		tbl, err := s.CreateTable(name, schema)
		if err != nil {
			t.Fatal(err)
		}
		tx := s.Begin()
		const chunk = 1 << 15
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			b := types.NewBatch(schema)
			for i := lo; i < hi; i++ {
				fill(b, i)
			}
			if err := tx.Insert(tbl, b); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	fact := mk("fact", types.Schema{
		{Name: "m", Type: types.Int64}, {Name: "v", Type: types.Float64},
	}, 200_000, func(b *types.Batch, i int) {
		b.Cols[0].AppendInt(int64(i % 10_000))
		b.Cols[1].AppendFloat(float64(i))
	})
	mid := mk("mid", types.Schema{
		{Name: "id", Type: types.Int64}, {Name: "d", Type: types.Int64},
	}, 10_000, func(b *types.Batch, i int) {
		b.Cols[0].AppendInt(int64(i))
		b.Cols[1].AppendInt(int64(i % 100))
	})
	dim := mk("dim", types.Schema{
		{Name: "id", Type: types.Int64}, {Name: "flag", Type: types.Int64},
	}, 100, func(b *types.Batch, i int) {
		b.Cols[0].AppendInt(int64(i))
		b.Cols[1].AppendInt(int64(i % 2))
	})
	return s, [3]*storage.Table{fact, mid, dim}
}

// joinOrderPlan writes the query in its worst syntactic order: the two big
// tables joined first, the selective dim filter applied last.
//
//	SELECT count(*) FROM fact JOIN mid ON fact.m = mid.id
//	                          JOIN dim ON mid.d = dim.id WHERE dim.id < 5
func joinOrderPlan(s *storage.Store, t [3]*storage.Table) plan.Node {
	snap := s.Snapshot()
	fact := plan.NewScan(t[0], "", snap) // m, v
	mid := plan.NewScan(t[1], "", snap)  // id, d
	dim := plan.NewScan(t[2], "", snap)  // id, flag

	dimF := &plan.Filter{Child: dim, Pred: &expr.BinOp{Op: expr.OpLt, Typ: types.Bool,
		L: colRef("id", 0, types.Int64),
		R: &expr.Const{Val: types.NewInt(5)}}}

	j1 := &plan.Join{Type: plan.InnerJoin, L: fact, R: mid,
		On: &expr.BinOp{Op: expr.OpEq, Typ: types.Bool,
			L: colRef("m", 0, types.Int64), R: colRef("id", 2, types.Int64)},
		EquiLeft: []int{0}, EquiRight: []int{0}}
	j2 := &plan.Join{Type: plan.InnerJoin, L: j1, R: dimF,
		On: &expr.BinOp{Op: expr.OpEq, Typ: types.Bool,
			L: colRef("d", 3, types.Int64), R: colRef("id", 4, types.Int64)},
		EquiLeft: []int{3}, EquiRight: []int{0}}
	return &plan.Aggregate{Child: j2,
		Aggs: []plan.AggSpec{{Func: plan.AggCountStar, Type: types.Int64, Name: "count(*)"}}}
}

// BenchmarkJoinOrder quantifies the cost-based join reorder: "as_written"
// executes the plan exactly as the query is phrased (200k x 10k join built
// before the 5-row dim filter restricts anything); "reordered" runs the
// same tree through plan.OptimizeAccess, which starts from the filtered
// dim and keeps every intermediate small.
func BenchmarkJoinOrder(b *testing.B) {
	s, tables := joinOrderTables(b)

	run := func(b *testing.B, p plan.Node) {
		ctx := NewContext()
		ctx.Workers = 1
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := Run(p, ctx)
			if err != nil {
				b.Fatal(err)
			}
			if got := m.Rows()[0][0].I; got != 10_000 {
				b.Fatalf("count = %d, want 10000", got)
			}
		}
	}

	b.Run("as_written", func(b *testing.B) {
		run(b, joinOrderPlan(s, tables))
	})
	b.Run("reordered", func(b *testing.B) {
		run(b, plan.OptimizeAccess(joinOrderPlan(s, tables), nil))
	})
}
