package exec

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// errScanCancelled is the single early-termination signal for producer
// goroutines: it aborts a storage scan when the consumer stops early
// (LIMIT satisfied, operator closed) or the query is cancelled. It never
// escapes the executor; compare with errors.Is.
var errScanCancelled = errors.New("exec: scan stopped early")

// ResourceError reports a query that exceeded a configured resource budget
// (WithMemoryLimit). It is user-actionable: raise the limit, or rewrite the
// query to materialize less.
type ResourceError struct {
	// Operator names the operator that tripped the budget.
	Operator string
	// Limit is the configured budget in bytes.
	Limit int64
	// Requested is the total usage in bytes the query attempted to hold.
	Requested int64
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("query memory limit exceeded in %s: %d bytes needed, limit is %d",
		e.Operator, e.Requested, e.Limit)
}

// InternalError wraps an operator panic recovered at an executor boundary:
// the query fails, the process survives. The stack is captured at the
// panic site for diagnosis.
type InternalError struct {
	// Op names the executor boundary that recovered the panic.
	Op string
	// Panic is the recovered value.
	Panic any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error in %s operator: %v", e.Op, e.Panic)
}

// containPanic converts a panic in the calling function into an
// *InternalError assigned to *errp. Panics that are already InternalError
// re-wraps (a contained panic crossing a second boundary) pass through
// unchanged. Use as: defer containPanic("sort", &err).
func containPanic(op string, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if ie, ok := r.(*InternalError); ok {
		*errp = ie
		return
	}
	*errp = &InternalError{Op: op, Panic: r, Stack: debug.Stack()}
}
