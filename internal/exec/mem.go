package exec

import (
	"sync/atomic"

	"lambdadb/internal/types"
)

// memAccountant tracks the bytes a query holds in materializations against
// a configured budget. Charges come from the points where the executor
// retains data — Drain output, hash-join build tables, sort runs, and
// ITERATE working tables — so a runaway query fails with a typed
// ResourceError instead of driving the process out of memory. The counter
// is a conservative high-water estimate: pipelined stages that hand a
// materialization to their parent may be counted at both levels.
type memAccountant struct {
	limit int64
	used  atomic.Int64
	// peak is the high-water mark of used, kept for telemetry (EXPLAIN
	// ANALYZE, system.query_log peak_bytes).
	peak atomic.Int64
}

// charge reserves n bytes on behalf of op, failing with a *ResourceError
// when the budget would be exceeded. A nil accountant (no limit) is free.
func (a *memAccountant) charge(op string, n int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	used := a.used.Add(n)
	if used > a.limit {
		a.used.Add(-n)
		return &ResourceError{Operator: op, Limit: a.limit, Requested: used}
	}
	for {
		p := a.peak.Load()
		if used <= p || a.peak.CompareAndSwap(p, used) {
			break
		}
	}
	return nil
}

// release returns n bytes to the budget (dropped working tables).
func (a *memAccountant) release(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.used.Add(-n)
}

// SetMemoryLimit caps the bytes this query may hold in materializations;
// bytes <= 0 means unlimited (the default).
func (c *Context) SetMemoryLimit(bytes int64) {
	if bytes > 0 {
		c.mem = &memAccountant{limit: bytes}
	} else {
		c.mem = nil
	}
}

// MemoryUsed reports the bytes currently charged against the query budget
// (0 when no limit is set).
func (c *Context) MemoryUsed() int64 {
	if c == nil || c.mem == nil {
		return 0
	}
	return c.mem.used.Load()
}

// PeakBytes reports the high-water mark of bytes charged against the query
// budget (0 when neither a memory limit nor stats collection armed the
// accountant).
func (c *Context) PeakBytes() int64 {
	if c == nil || c.mem == nil {
		return 0
	}
	return c.mem.peak.Load()
}

// charge books n bytes against the query budget under the given operator
// label; nil-safe for contexts without a limit.
func (c *Context) charge(op string, n int64) error {
	if c == nil {
		return nil
	}
	return c.mem.charge(op, n)
}

// release returns n bytes to the query budget.
func (c *Context) release(n int64) {
	if c != nil && c.mem != nil {
		c.mem.release(n)
	}
}

// batchBytes estimates the resident size of a batch: fixed-width payloads
// by type, string payloads by length plus header, one byte per row for a
// null bitmap when present.
func batchBytes(b *types.Batch) int64 {
	if b == nil {
		return 0
	}
	rows := b.Len()
	var n int64
	for _, c := range b.Cols {
		switch c.T {
		case types.Int64, types.Float64:
			n += int64(rows) * 8
		case types.Bool:
			n += int64(rows)
		case types.String:
			strs := c.Strs
			if len(strs) > rows {
				strs = strs[:rows]
			}
			n += int64(len(strs)) * 16
			for _, s := range strs {
				n += int64(len(s))
			}
		}
		if c.Nulls != nil {
			n += int64(rows)
		}
	}
	return n
}

// matBytes estimates the resident size of a materialized relation.
func matBytes(m *Materialized) int64 {
	if m == nil {
		return 0
	}
	var n int64
	for _, b := range m.Batches {
		n += batchBytes(b)
	}
	return n
}

// rowsBytes estimates the resident size of value rows (sort runs).
func rowsBytes(rows [][]types.Value) int64 {
	var n int64
	for _, r := range rows {
		// One Value struct is ~48 bytes (type tag, scalar fields, string
		// header); count string payloads on top.
		n += int64(len(r)) * 48
		for _, v := range r {
			n += int64(len(v.S))
		}
	}
	return n
}
