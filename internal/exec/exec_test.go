package exec

import (
	"sort"
	"testing"

	"lambdadb/internal/expr"
	"lambdadb/internal/plan"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// bigTable builds a table of n rows (k BIGINT, v DOUBLE) with k = i % mod.
func bigTable(t testing.TB, n, mod int) (*storage.Store, *storage.Table) {
	t.Helper()
	s := storage.NewStore()
	tbl, err := s.CreateTable("big", types.Schema{
		{Name: "k", Type: types.Int64},
		{Name: "v", Type: types.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	const chunk = 1 << 15
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		b := types.NewBatch(tbl.Schema())
		for i := lo; i < hi; i++ {
			b.Cols[0].AppendInt(int64(i % mod))
			b.Cols[1].AppendFloat(float64(i))
		}
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

func colRef(name string, idx int, t types.Type) *expr.ColRef {
	return &expr.ColRef{Name: name, Index: idx, Typ: t}
}

// TestParallelAggregationMatchesSerial verifies the morsel-parallel
// aggregation path produces exactly the serial result.
func TestParallelAggregationMatchesSerial(t *testing.T) {
	s, tbl := bigTable(t, 100_000, 7)
	scan := plan.NewScan(tbl, "", s.Snapshot())
	agg := &plan.Aggregate{
		Child:    scan,
		Keys:     []expr.Expr{colRef("k", 0, types.Int64)},
		KeyNames: []string{"k"},
		Aggs: []plan.AggSpec{
			{Func: plan.AggCountStar, Type: types.Int64, Name: "count(*)"},
			{Func: plan.AggSum, Arg: colRef("v", 1, types.Float64), Type: types.Float64, Name: "sum(v)"},
			{Func: plan.AggMin, Arg: colRef("v", 1, types.Float64), Type: types.Float64, Name: "min(v)"},
			{Func: plan.AggMax, Arg: colRef("v", 1, types.Float64), Type: types.Float64, Name: "max(v)"},
		},
	}
	serialCtx := NewContext()
	serialCtx.Workers = 1
	serial, err := Run(agg, serialCtx)
	if err != nil {
		t.Fatal(err)
	}
	parCtx := NewContext()
	parCtx.Workers = 8
	parallel, err := Run(agg, parCtx)
	if err != nil {
		t.Fatal(err)
	}
	normalize := func(m *Materialized) [][]types.Value {
		rows := m.Rows()
		sort.Slice(rows, func(i, j int) bool { return rows[i][0].I < rows[j][0].I })
		return rows
	}
	sr, pr := normalize(serial), normalize(parallel)
	if len(sr) != 7 || len(pr) != 7 {
		t.Fatalf("group counts: serial %d parallel %d", len(sr), len(pr))
	}
	for i := range sr {
		for j := range sr[i] {
			if !sr[i][j].Equal(pr[i][j]) {
				t.Errorf("row %d col %d: serial %v parallel %v", i, j, sr[i][j], pr[i][j])
			}
		}
	}
}

func TestSplitParallelCoversAllRows(t *testing.T) {
	s, tbl := bigTable(t, 50_000, 3)
	scan := plan.NewScan(tbl, "", s.Snapshot())
	parts := splitParallel(scan, 4, NewContext())
	if len(parts) < 2 {
		t.Fatalf("expected multiple parts, got %d", len(parts))
	}
	ctx := NewContext()
	total := 0
	for _, p := range parts {
		m, err := Run(p, ctx)
		if err != nil {
			t.Fatal(err)
		}
		total += m.NumRows
	}
	if total != 50_000 {
		t.Errorf("parts cover %d rows, want 50000", total)
	}
}

func TestSplitParallelRefusesSmallTables(t *testing.T) {
	s, tbl := bigTable(t, 100, 3)
	scan := plan.NewScan(tbl, "", s.Snapshot())
	if parts := splitParallel(scan, 8, NewContext()); parts != nil {
		t.Errorf("small table should not be split, got %d parts", len(parts))
	}
}

func TestSplitParallelRefusesNonPipelines(t *testing.T) {
	s, tbl := bigTable(t, 50_000, 3)
	scan := plan.NewScan(tbl, "", s.Snapshot())
	// An aggregate is a pipeline breaker: its subtree must not be split.
	agg := &plan.Aggregate{Child: scan, Aggs: []plan.AggSpec{
		{Func: plan.AggCountStar, Type: types.Int64, Name: "count(*)"}}}
	if parts := splitParallel(agg, 8, NewContext()); parts != nil {
		t.Error("aggregate should not be splittable")
	}
}

func TestLimitOffsetAcrossBatches(t *testing.T) {
	s, tbl := bigTable(t, 5000, 5000) // k = 0..4999 unique
	scan := plan.NewScan(tbl, "", s.Snapshot())
	lim := &plan.Limit{Child: scan, N: 10, Offset: 2040} // crosses batch boundary
	m, err := Run(lim, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 10 {
		t.Fatalf("rows = %d", m.NumRows)
	}
	rows := m.Rows()
	if rows[0][0].I != 2040 || rows[9][0].I != 2049 {
		t.Errorf("offset slice wrong: first %v last %v", rows[0][0], rows[9][0])
	}
}

func TestHashJoinDuplicateKeys(t *testing.T) {
	// Left has duplicate keys; every pair must appear.
	s := storage.NewStore()
	mk := func(name string, keys []int64) *storage.Table {
		tbl, err := s.CreateTable(name, types.Schema{{Name: "k", Type: types.Int64}})
		if err != nil {
			t.Fatal(err)
		}
		tx := s.Begin()
		b := types.NewBatch(tbl.Schema())
		for _, k := range keys {
			b.AppendRow([]types.Value{types.NewInt(k)})
		}
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	l := mk("l", []int64{1, 1, 2})
	r := mk("r", []int64{1, 2, 2, 3})
	join := &plan.Join{
		Type:      plan.InnerJoin,
		L:         plan.NewScan(l, "", s.Snapshot()),
		R:         plan.NewScan(r, "", s.Snapshot()),
		EquiLeft:  []int{0},
		EquiRight: []int{0},
	}
	m, err := Run(join, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	// 1 matches twice on the left × once on the right = 2; 2 matches
	// 1 × 2 = 2. Total 4.
	if m.NumRows != 4 {
		t.Errorf("join rows = %d, want 4", m.NumRows)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	s := storage.NewStore()
	tbl, err := s.CreateTable("n", types.Schema{{Name: "k", Type: types.Int64}})
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	b := types.NewBatch(tbl.Schema())
	b.AppendRow([]types.Value{types.NewNull(types.Int64)})
	b.AppendRow([]types.Value{types.NewInt(1)})
	if err := tx.Insert(tbl, b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	join := &plan.Join{
		Type:      plan.InnerJoin,
		L:         plan.NewScan(tbl, "a", s.Snapshot()),
		R:         plan.NewScan(tbl, "b", s.Snapshot()),
		EquiLeft:  []int{0},
		EquiRight: []int{0},
	}
	m, err := Run(join, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 1 { // only 1 = 1; NULL joins nothing
		t.Errorf("rows = %d, want 1", m.NumRows)
	}
}

func TestWorkingScanUnboundError(t *testing.T) {
	ws := &plan.WorkingScan{Name: "ghost", Sch: types.Schema{{Name: "x", Type: types.Int64}}}
	_, err := Run(ws, NewContext())
	if err == nil {
		t.Error("unbound working table should fail")
	}
}

func TestValuesOperator(t *testing.T) {
	v := &plan.Values{
		Sch: types.Schema{{Name: "x", Type: types.Int64}},
		Rows: [][]types.Value{
			{types.NewInt(1)}, {types.NewInt(2)},
		},
	}
	m, err := Run(v, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 2 {
		t.Errorf("rows = %d", m.NumRows)
	}
}

func TestDrainClosesOnError(t *testing.T) {
	// A filter whose predicate errors (modulo by zero) must propagate the
	// error from Drain.
	s, tbl := bigTable(t, 100, 3)
	scan := plan.NewScan(tbl, "", s.Snapshot())
	pred := &expr.BinOp{Op: expr.OpEq, Typ: types.Bool,
		L: &expr.BinOp{Op: expr.OpMod, Typ: types.Int64,
			L: colRef("k", 0, types.Int64),
			R: &expr.Const{Val: types.NewInt(0)}},
		R: &expr.Const{Val: types.NewInt(0)}}
	f := &plan.Filter{Child: scan, Pred: pred}
	if _, err := Run(f, NewContext()); err == nil {
		t.Error("expected runtime error")
	}
}

func TestScanRangeRestriction(t *testing.T) {
	s, tbl := bigTable(t, 10_000, 10_000)
	scan := &plan.Scan{Rel: tbl, Alias: "big", Snapshot: s.Snapshot(), Lo: 100, Hi: 200}
	m, err := Run(scan, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 100 {
		t.Errorf("range scan rows = %d, want 100", m.NumRows)
	}
	rows := m.Rows()
	if rows[0][0].I != 100 {
		t.Errorf("first row = %v", rows[0])
	}
}
