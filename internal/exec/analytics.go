package exec

import (
	"fmt"
	"time"

	"lambdadb/internal/analytics"
	"lambdadb/internal/expr"
	"lambdadb/internal/graph"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// floatMatrix is a materialized numeric input: n rows of d float64 columns,
// row-major.
type floatMatrix struct {
	data []float64
	n, d int
}

// drainFloatMatrix materializes a plan into a row-major float matrix,
// scanning morsel-parallel when the input pipeline allows it. NULLs in
// analytical inputs are rejected.
func drainFloatMatrix(p plan.Node, ctx *Context) (*floatMatrix, error) {
	d := len(p.Schema())
	for _, c := range p.Schema() {
		if !c.Type.IsNumeric() {
			return nil, fmt.Errorf("analytical input column %q is %s, need a numeric type", c.Name, c.Type)
		}
	}
	parts := splitParallel(p, ctx.workers(), ctx)
	if len(parts) <= 1 {
		data, n, err := drainFloatsSerial(p, ctx, d)
		if err != nil {
			return nil, err
		}
		return &floatMatrix{data: data, n: n, d: d}, nil
	}
	datas := make([][]float64, len(parts))
	ns := make([]int, len(parts))
	err := runParts(ctx, len(parts), func(i int) error {
		var err error
		datas[i], ns[i], err = drainFloatsSerial(parts[i], ctx, d)
		return err
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for i := range parts {
		total += ns[i]
	}
	data := make([]float64, 0, total*d)
	for _, part := range datas {
		data = append(data, part...)
	}
	return &floatMatrix{data: data, n: total, d: d}, nil
}

func drainFloatsSerial(p plan.Node, ctx *Context, d int) ([]float64, int, error) {
	op, err := buildFor(p, ctx)
	if err != nil {
		return nil, 0, err
	}
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, 0, err
	}
	defer op.Close()
	var data []float64
	n := 0
	for {
		b, err := op.Next()
		if err != nil {
			return nil, 0, err
		}
		if b == nil {
			break
		}
		rows := b.Len()
		for i := 0; i < rows; i++ {
			for j := 0; j < d; j++ {
				col := b.Cols[j]
				if col.IsNull(i) {
					return nil, 0, fmt.Errorf("NULL in analytical input column %q", b.Schema[j].Name)
				}
				if col.T == types.Int64 {
					data = append(data, float64(col.Ints[i]))
				} else {
					data = append(data, col.Floats[i])
				}
			}
		}
		n += rows
	}
	return data, n, nil
}

// kmeansOp is the physical k-Means operator (paper Section 6.1).
type kmeansOp struct {
	node *plan.KMeans
	dist analytics.DistanceFn
	it   matIterator
}

func newKMeansOp(n *plan.KMeans) (Operator, error) {
	op := &kmeansOp{node: n}
	if n.Lambda != nil {
		fn, err := expr.CompileFloatLambda(n.Lambda)
		if err != nil {
			return nil, fmt.Errorf("kmeans lambda: %w", err)
		}
		op.dist = analytics.DistanceFn(fn)
	}
	return op, nil
}

func (k *kmeansOp) Schema() types.Schema { return k.node.Schema() }

func (k *kmeansOp) Open(ctx *Context) error {
	data, err := drainFloatMatrix(k.node.Data, ctx)
	if err != nil {
		return fmt.Errorf("kmeans data: %w", err)
	}
	centers, err := drainFloatMatrix(k.node.Centers, ctx)
	if err != nil {
		return fmt.Errorf("kmeans centers: %w", err)
	}
	if centers.n == 0 {
		return fmt.Errorf("kmeans: no initial centers")
	}
	if data.n == 0 {
		return fmt.Errorf("kmeans: empty data input")
	}
	opts := analytics.KMeansOptions{MaxIter: k.node.MaxIter, Workers: ctx.Workers, Distance: k.dist}
	if sc := ctx.statsCollector(); sc != nil {
		last := time.Now()
		opts.OnIteration = func(round, changed int) {
			now := time.Now()
			sc.AddIteration(k.node, IterationStat{
				Round: round,
				Rows:  int64(changed),
				Delta: float64(changed),
				Nanos: now.Sub(last).Nanoseconds(),
			})
			last = now
		}
	}
	res, err := analytics.KMeans(data.data, data.n, data.d, centers.data, centers.n, opts)
	if err != nil {
		return err
	}
	schema := k.Schema()
	out := &Materialized{Schema: schema}
	b := types.NewBatch(schema)
	for c := 0; c < centers.n; c++ {
		row := make([]types.Value, 0, data.d+1)
		row = append(row, types.NewInt(int64(c)))
		for j := 0; j < data.d; j++ {
			row = append(row, types.NewFloat(res.Centers[c*data.d+j]))
		}
		b.AppendRow(row)
	}
	out.Append(b)
	k.it = matIterator{mat: out}
	return nil
}

func (k *kmeansOp) Next() (*types.Batch, error) { return k.it.next(), nil }
func (k *kmeansOp) Close() error                { return nil }

// kmeansAssignOp applies centers to data rows, appending the nearest
// cluster id to every tuple (model application).
type kmeansAssignOp struct {
	node   *plan.KMeansAssign
	dist   analytics.DistanceFn
	schema types.Schema
	it     matIterator
}

func newKMeansAssignOp(n *plan.KMeansAssign) (*kmeansAssignOp, error) {
	op := &kmeansAssignOp{node: n, schema: n.Schema()}
	if n.Lambda != nil {
		fn, err := expr.CompileFloatLambda(n.Lambda)
		if err != nil {
			return nil, fmt.Errorf("kmeans_assign lambda: %w", err)
		}
		op.dist = analytics.DistanceFn(fn)
	}
	return op, nil
}

func (k *kmeansAssignOp) Schema() types.Schema { return k.schema }

func (k *kmeansAssignOp) Open(ctx *Context) error {
	centers, err := drainFloatMatrix(k.node.Centers, ctx)
	if err != nil {
		return fmt.Errorf("kmeans_assign centers: %w", err)
	}
	if centers.n == 0 {
		return fmt.Errorf("kmeans_assign: no centers")
	}
	dataMat, err := Run(k.node.Data, ctx)
	if err != nil {
		return fmt.Errorf("kmeans_assign data: %w", err)
	}
	d := centers.d
	out := &Materialized{Schema: k.schema}
	row := make([]float64, d)
	for _, b := range dataMat.Batches {
		n := b.Len()
		clusterCol := types.NewColumn(types.Int64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				col := b.Cols[j]
				if col.IsNull(i) {
					return fmt.Errorf("NULL in analytical input column %q", b.Schema[j].Name)
				}
				if col.T == types.Int64 {
					row[j] = float64(col.Ints[i])
				} else {
					row[j] = col.Floats[i]
				}
			}
			best := analytics.Assign(row, 1, d, centers.data, centers.n, k.dist, 1)
			clusterCol.AppendInt(int64(best[0]))
		}
		nb := &types.Batch{Schema: k.schema,
			Cols: append(append([]*types.Column{}, b.Cols...), clusterCol)}
		out.Append(nb)
	}
	k.it = matIterator{mat: out}
	return nil
}

func (k *kmeansAssignOp) Next() (*types.Batch, error) { return k.it.next(), nil }
func (k *kmeansAssignOp) Close() error                { return nil }

// pageRankOp is the physical PageRank operator (paper Section 6.3): it
// builds a temporary CSR index with dense re-labeled vertex ids, runs the
// ranking iterations, and maps ids back on output. An edge-weight lambda
// (Section 7) makes the CSR weighted.
type pageRankOp struct {
	node   *plan.PageRank
	weight expr.FloatFn
	it     matIterator
}

func newPageRankOp(n *plan.PageRank) (*pageRankOp, error) {
	op := &pageRankOp{node: n}
	if n.Lambda != nil {
		fn, err := expr.CompileFloatLambda(n.Lambda)
		if err != nil {
			return nil, fmt.Errorf("pagerank lambda: %w", err)
		}
		op.weight = fn
	}
	return op, nil
}

func (p *pageRankOp) Schema() types.Schema { return p.node.Schema() }

func (p *pageRankOp) Open(ctx *Context) error {
	src, dst, weights, err := drainEdges(p.node.Edges, ctx, p.weight)
	if err != nil {
		return fmt.Errorf("pagerank edges: %w", err)
	}
	g, err := graph.BuildWeighted(src, dst, weights)
	if err != nil {
		return err
	}
	opts := analytics.PageRankOptions{
		Damping: p.node.Damping,
		Epsilon: p.node.Epsilon,
		MaxIter: p.node.MaxIter,
		Workers: ctx.Workers,
	}
	if sc := ctx.statsCollector(); sc != nil {
		nRanks := int64(g.N)
		last := time.Now()
		opts.OnIteration = func(round int, delta float64) {
			now := time.Now()
			sc.AddIteration(p.node, IterationStat{
				Round: round,
				Rows:  nRanks,
				Delta: delta,
				Nanos: now.Sub(last).Nanoseconds(),
			})
			last = now
		}
	}
	res, err := analytics.PageRank(g, opts)
	if err != nil {
		return err
	}
	schema := p.Schema()
	out := &Materialized{Schema: schema}
	b := types.NewBatch(schema)
	for v := 0; v < g.N; v++ {
		// Reverse mapping: dense internal id back to the original id.
		b.AppendRow([]types.Value{types.NewInt(g.OrigIDs[v]), types.NewFloat(res.Ranks[v])})
		if b.Len() >= types.BatchSize {
			out.Append(b)
			b = types.NewBatch(schema)
		}
	}
	out.Append(b)
	p.it = matIterator{mat: out}
	return nil
}

func (p *pageRankOp) Next() (*types.Batch, error) { return p.it.next(), nil }
func (p *pageRankOp) Close() error                { return nil }

// drainEdges materializes an edge plan into src/dst slices; with a weight
// function, each edge tuple (as floats) is passed through it to produce
// per-edge weights.
func drainEdges(p plan.Node, ctx *Context, weight expr.FloatFn) (src, dst []int64, weights []float64, err error) {
	op, err := buildFor(p, ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, nil, nil, err
	}
	defer op.Close()
	ncols := len(p.Schema())
	tuple := make([]float64, ncols)
	for {
		b, err := op.Next()
		if err != nil {
			return nil, nil, nil, err
		}
		if b == nil {
			return src, dst, weights, nil
		}
		sc, dc := b.Cols[0], b.Cols[1]
		n := b.Len()
		for i := 0; i < n; i++ {
			if sc.IsNull(i) || dc.IsNull(i) {
				return nil, nil, nil, fmt.Errorf("NULL vertex id in edge input")
			}
		}
		src = append(src, sc.Ints...)
		dst = append(dst, dc.Ints...)
		if weight == nil {
			continue
		}
		for i := 0; i < n; i++ {
			for j := 0; j < ncols; j++ {
				col := b.Cols[j]
				if col.IsNull(i) {
					return nil, nil, nil, fmt.Errorf("NULL in edge property column %q", b.Schema[j].Name)
				}
				if col.T == types.Int64 {
					tuple[j] = float64(col.Ints[i])
				} else {
					tuple[j] = col.Floats[i]
				}
			}
			w := weight(tuple, nil)
			if w < 0 {
				return nil, nil, nil, fmt.Errorf("edge-weight lambda produced negative weight %g", w)
			}
			weights = append(weights, w)
		}
	}
}

// nbTrainOp is the Naive Bayes training operator (paper Section 6.2). The
// last input column is the class label.
type nbTrainOp struct {
	node *plan.NaiveBayesTrain
	it   matIterator
}

func newNBTrainOp(n *plan.NaiveBayesTrain) *nbTrainOp { return &nbTrainOp{node: n} }

func (t *nbTrainOp) Schema() types.Schema { return plan.NBModelSchema }

func (t *nbTrainOp) Open(ctx *Context) error {
	m, err := drainFloatMatrix(t.node.Data, ctx)
	if err != nil {
		return fmt.Errorf("naive_bayes_train: %w", err)
	}
	if m.n == 0 {
		return fmt.Errorf("naive_bayes_train: empty training set")
	}
	// Split off the label column.
	d := m.d - 1
	feats := make([]float64, m.n*d)
	labels := make([]int64, m.n)
	for i := 0; i < m.n; i++ {
		copy(feats[i*d:], m.data[i*m.d:i*m.d+d])
		labels[i] = int64(m.data[i*m.d+d])
	}
	model, err := analytics.TrainNB(feats, m.n, d, labels, ctx.Workers)
	if err != nil {
		return err
	}
	t.it = matIterator{mat: modelToRelation(model)}
	return nil
}

func (t *nbTrainOp) Next() (*types.Batch, error) { return t.it.next(), nil }
func (t *nbTrainOp) Close() error                { return nil }

// modelToRelation encodes an NBModel in the relational model schema: one
// row per (class, feature).
func modelToRelation(m *analytics.NBModel) *Materialized {
	out := &Materialized{Schema: plan.NBModelSchema}
	b := types.NewBatch(plan.NBModelSchema)
	for c, label := range m.Labels {
		for f := range m.Means[c] {
			b.AppendRow([]types.Value{
				types.NewInt(label),
				types.NewInt(int64(f)),
				types.NewFloat(m.Priors[c]),
				types.NewFloat(m.Means[c][f]),
				types.NewFloat(m.Stds[c][f]),
			})
			if b.Len() >= types.BatchSize {
				out.Append(b)
				b = types.NewBatch(plan.NBModelSchema)
			}
		}
	}
	out.Append(b)
	return out
}

// relationToModel decodes the model relation back into an NBModel.
func relationToModel(mat *Materialized) (*analytics.NBModel, error) {
	type key struct {
		label   int64
		feature int64
	}
	priors := map[int64]float64{}
	means := map[key]float64{}
	stds := map[key]float64{}
	maxFeature := int64(-1)
	for _, b := range mat.Batches {
		n := b.Len()
		for i := 0; i < n; i++ {
			label := b.Cols[0].Ints[i]
			feature := b.Cols[1].Ints[i]
			priors[label] = b.Cols[2].Floats[i]
			means[key{label, feature}] = b.Cols[3].Floats[i]
			stds[key{label, feature}] = b.Cols[4].Floats[i]
			if feature > maxFeature {
				maxFeature = feature
			}
		}
	}
	if len(priors) == 0 {
		return nil, fmt.Errorf("naive_bayes_predict: empty model")
	}
	labels := make([]int64, 0, len(priors))
	for l := range priors {
		labels = append(labels, l)
	}
	sortInt64s(labels)
	d := int(maxFeature + 1)
	m := &analytics.NBModel{Labels: labels}
	for _, l := range labels {
		m.Priors = append(m.Priors, priors[l])
		mm := make([]float64, d)
		ss := make([]float64, d)
		for f := 0; f < d; f++ {
			mean, ok := means[key{l, int64(f)}]
			if !ok {
				return nil, fmt.Errorf("naive_bayes_predict: model missing feature %d for label %d", f, l)
			}
			mm[f] = mean
			ss[f] = stds[key{l, int64(f)}]
		}
		m.Means = append(m.Means, mm)
		m.Stds = append(m.Stds, ss)
	}
	return m, nil
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// nbPredictOp applies a trained model to feature rows, appending the
// predicted label.
type nbPredictOp struct {
	node   *plan.NaiveBayesPredict
	schema types.Schema
	it     matIterator
}

func newNBPredictOp(n *plan.NaiveBayesPredict) *nbPredictOp {
	return &nbPredictOp{node: n, schema: n.Schema()}
}

func (p *nbPredictOp) Schema() types.Schema { return p.schema }

func (p *nbPredictOp) Open(ctx *Context) error {
	modelMat, err := Run(p.node.Model, ctx)
	if err != nil {
		return fmt.Errorf("naive_bayes_predict model: %w", err)
	}
	model, err := relationToModel(modelMat)
	if err != nil {
		return err
	}
	dataMat, err := Run(p.node.Data, ctx)
	if err != nil {
		return fmt.Errorf("naive_bayes_predict data: %w", err)
	}
	d := len(p.node.Data.Schema())
	if len(model.Means) > 0 && len(model.Means[0]) != d {
		return fmt.Errorf("naive_bayes_predict: model has %d features, data has %d",
			len(model.Means[0]), d)
	}
	out := &Materialized{Schema: p.schema}
	row := make([]float64, d)
	for _, b := range dataMat.Batches {
		n := b.Len()
		labelCol := types.NewColumn(types.Int64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				col := b.Cols[j]
				if col.IsNull(i) {
					return fmt.Errorf("NULL in analytical input column %q", b.Schema[j].Name)
				}
				if col.T == types.Int64 {
					row[j] = float64(col.Ints[i])
				} else {
					row[j] = col.Floats[i]
				}
			}
			labelCol.AppendInt(model.Predict(row))
		}
		nb := &types.Batch{Schema: p.schema, Cols: append(append([]*types.Column{}, b.Cols...), labelCol)}
		out.Append(nb)
	}
	p.it = matIterator{mat: out}
	return nil
}

func (p *nbPredictOp) Next() (*types.Batch, error) { return p.it.next(), nil }
func (p *nbPredictOp) Close() error                { return nil }
