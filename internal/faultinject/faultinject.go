// Package faultinject provides named fault-injection trigger points for
// deterministic robustness testing. Production code calls Fire(point) at
// interesting boundaries (scan batches, join build/probe, sort runs,
// iterate rounds, snapshot writes); the call is a single atomic load unless
// a test has armed a hook, so the hooks cost nothing in normal operation.
//
// Hooks return an error to inject a failure, or panic to exercise the
// executor's panic containment. Points are plain strings, namespaced by
// package (e.g. "exec.sort.run", "persist.save.write").
package faultinject

import (
	"sync"
	"sync/atomic"
)

var (
	armed atomic.Bool
	mu    sync.Mutex
	hooks map[string]func() error
)

// Fire invokes the hook registered at point, if any. It is the only call
// that appears in production code paths.
func Fire(point string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	fn := hooks[point]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Set registers a hook at point, replacing any previous hook there.
func Set(point string, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = map[string]func() error{}
	}
	hooks[point] = fn
	armed.Store(true)
}

// FailOnce registers a hook that returns err on its first firing and nil
// afterwards.
func FailOnce(point string, err error) {
	var done atomic.Bool
	Set(point, func() error {
		if done.Swap(true) {
			return nil
		}
		return err
	})
}

// FailAfter registers a hook that returns nil for the first n firings and
// err on every firing after that.
func FailAfter(point string, n int64, err error) {
	var count atomic.Int64
	Set(point, func() error {
		if count.Add(1) <= n {
			return nil
		}
		return err
	})
}

// Clear removes the hook at point.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, point)
	if len(hooks) == 0 {
		armed.Store(false)
	}
}

// Reset removes every hook. Tests that Set hooks should defer Reset.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
	armed.Store(false)
}
