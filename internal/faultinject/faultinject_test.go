package faultinject

import (
	"errors"
	"testing"
)

func TestFireUnarmedIsNil(t *testing.T) {
	Reset()
	if err := Fire("any.point"); err != nil {
		t.Fatalf("unarmed Fire = %v, want nil", err)
	}
}

func TestSetAndClear(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("p", func() error { return boom })
	if err := Fire("p"); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
	if err := Fire("other"); err != nil {
		t.Fatalf("unregistered point fired: %v", err)
	}
	Clear("p")
	if err := Fire("p"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
}

func TestFailOnce(t *testing.T) {
	defer Reset()
	boom := errors.New("once")
	FailOnce("p", boom)
	if err := Fire("p"); !errors.Is(err, boom) {
		t.Fatalf("first Fire = %v, want once", err)
	}
	for i := 0; i < 3; i++ {
		if err := Fire("p"); err != nil {
			t.Fatalf("Fire after first = %v, want nil", err)
		}
	}
}

func TestFailAfter(t *testing.T) {
	defer Reset()
	boom := errors.New("later")
	FailAfter("p", 2, boom)
	for i := 0; i < 2; i++ {
		if err := Fire("p"); err != nil {
			t.Fatalf("Fire %d = %v, want nil", i, err)
		}
	}
	if err := Fire("p"); !errors.Is(err, boom) {
		t.Fatalf("third Fire = %v, want later", err)
	}
	if err := Fire("p"); !errors.Is(err, boom) {
		t.Fatalf("fourth Fire = %v, want later", err)
	}
}

func TestResetDisarms(t *testing.T) {
	Set("p", func() error { return errors.New("x") })
	Reset()
	if err := Fire("p"); err != nil {
		t.Fatalf("Fire after Reset = %v, want nil", err)
	}
}

// TestConcurrentFire exercises the armed fast path and hook map under
// concurrent readers (run under -race via make check).
func TestConcurrentFire(t *testing.T) {
	defer Reset()
	Set("p", func() error { return nil })
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				Fire("p")
				Fire("q")
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}
