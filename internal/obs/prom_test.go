package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lambdadb/internal/engine"
	"lambdadb/internal/telemetry"
)

// metricLine matches one sample of the text exposition format:
// name{labels} value — where the label set is optional but never empty
// braces.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]+\})? [^ ]+$`)

// TestRenderMetricsValidity runs real statements through an engine and then
// lints the full exposition: every line is a comment or a well-formed
// sample, every sample belongs to a declared family, histogram buckets are
// cumulative and end at +Inf with the _count value.
func TestRenderMetricsValidity(t *testing.T) {
	db := engine.Open()
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (n BIGINT); INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT count(*) FROM t`); err != nil {
		t.Fatal(err)
	}
	_, _ = db.Exec(`SELECT broken`) // drive the error counter too

	text := RenderMetrics(db)
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition does not end with a newline")
	}

	typed := map[string]string{} // family -> type
	samples := map[string][]string{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			if _, dup := typed[parts[2]]; dup {
				t.Errorf("family %s declared twice", parts[2])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.Contains(line, "{}") {
			t.Errorf("empty label braces in %q", line)
		}
		if !metricLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		samples[name] = append(samples[name], line)
	}

	// Every sample must trace back to a declared family (histogram samples
	// via their _bucket/_sum/_count suffix).
	for name := range samples {
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typed[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("sample %s has no TYPE declaration", name)
		}
	}

	// Core counters and gauges are present with their declared types.
	for name, wantType := range map[string]string{
		"lambdadb_statements_total": "counter",
		"lambdadb_statements_error": "counter",
		"lambdadb_conns_active":     "gauge",
		"lambdadb_queries_active":   "gauge",
		"lambdadb_sessions_active":  "gauge",
		"lambdadb_wal_durable_lsn":  "gauge",
	} {
		if got := typed[name]; got != wantType {
			t.Errorf("family %s type = %q, want %q", name, got, wantType)
		}
	}
	if typed["lambdadb_statement_latency_seconds"] != "histogram" {
		t.Error("statement latency histogram family missing")
	}

	// The statements we ran must show up.
	if !strings.Contains(text, "lambdadb_statement_latency_seconds_bucket{kind=\"select\"") {
		t.Error("no select-kind latency buckets after running SELECTs")
	}
	checkHistogramBuckets(t, samples)
}

// checkHistogramBuckets verifies the cumulative invariants per label set:
// bucket counts are non-decreasing in le order (which matches emission
// order) and the +Inf bucket equals the _count sample.
func checkHistogramBuckets(t *testing.T, samples map[string][]string) {
	t.Helper()
	for name, lines := range samples {
		if !strings.HasSuffix(name, "_bucket") {
			continue
		}
		// Group by label set minus le; emission order is ascending le.
		type state struct {
			last  int64
			final int64
			inf   bool
		}
		byLabels := map[string]*state{}
		for _, line := range lines {
			open := strings.Index(line, "{")
			end := strings.LastIndex(line, "}")
			labels := line[open+1 : end]
			val, err := strconv.ParseInt(strings.TrimSpace(line[end+1:]), 10, 64)
			if err != nil {
				t.Errorf("bucket value in %q: %v", line, err)
				continue
			}
			le := ""
			var rest []string
			for _, kv := range strings.Split(labels, ",") {
				if strings.HasPrefix(kv, "le=") {
					le = kv
				} else {
					rest = append(rest, kv)
				}
			}
			key := strings.Join(rest, ",")
			st := byLabels[key]
			if st == nil {
				st = &state{last: -1}
				byLabels[key] = st
			}
			if val < st.last {
				t.Errorf("%s{%s}: cumulative count decreased to %d (%s)", name, key, val, le)
			}
			st.last = val
			if le == `le="+Inf"` {
				st.inf = true
				st.final = val
			}
		}
		countName := strings.TrimSuffix(name, "_bucket") + "_count"
		for key, st := range byLabels {
			if !st.inf {
				t.Errorf("%s{%s}: no +Inf bucket", name, key)
				continue
			}
			want := fmt.Sprintf(" %d", st.final)
			found := false
			for _, cl := range samples[countName] {
				if strings.Contains(cl, key) && strings.HasSuffix(cl, want) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s{%s}: +Inf bucket %d does not match any %s sample", name, key, st.final, countName)
			}
		}
	}
}

// BenchmarkRenderMetrics is the cost of one Prometheus scrape against a
// populated engine. It never takes a query lock, but it should stay cheap
// enough to scrape every few seconds. See BENCH_obs.json.
func BenchmarkRenderMetrics(b *testing.B) {
	db := engine.Open()
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (n BIGINT); INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := db.Exec(`SELECT count(*) FROM t`); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RenderMetrics(db)
	}
}

// TestRenderReplication checks the per-link gauges, ordering, and label
// escaping.
func TestRenderReplication(t *testing.T) {
	var sb strings.Builder
	renderReplication(&sb, []engine.ReplicationRow{
		{Role: "primary", Peer: "10.0.0.9:50", State: "streaming", AppliedClock: 90, PrimaryClock: 100, LastContact: 1500},
		{Role: "primary", Peer: `weird"peer`, State: "catchup", AppliedClock: 120, PrimaryClock: 100, LastContact: -1},
	})
	out := sb.String()
	if !strings.Contains(out, `lambdadb_repl_lag_records{role="primary",peer="10.0.0.9:50"} 10`) {
		t.Errorf("missing lag gauge:\n%s", out)
	}
	// Negative lag (replica acked ahead of the cached primary clock) clamps to 0.
	if !strings.Contains(out, `peer="weird\"peer"} 0`) {
		t.Errorf("negative lag not clamped / label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `lambdadb_repl_last_contact_seconds{role="primary",peer="10.0.0.9:50"} 1.5`) {
		t.Errorf("last-contact seconds wrong:\n%s", out)
	}
	if !strings.Contains(out, `state="catchup"`) {
		t.Errorf("link info state missing:\n%s", out)
	}
	// Stable order: peers sorted.
	if strings.Index(out, "10.0.0.9") > strings.Index(out, "weird") {
		t.Errorf("rows not sorted by peer:\n%s", out)
	}

	var empty strings.Builder
	renderReplication(&empty, nil)
	if empty.Len() != 0 {
		t.Errorf("no rows should render nothing, got:\n%s", empty.String())
	}
}

// TestRenderHistogramTruncation: only buckets up to the highest non-empty
// one are emitted (plus +Inf), so an idle histogram costs two lines.
func TestRenderHistogramTruncation(t *testing.T) {
	var sb strings.Builder
	var h telemetry.Histogram
	renderHistogram(&sb, telemetry.HistogramDef{Family: "probe_seconds", Seconds: true, H: &h})
	out := sb.String()
	if got := strings.Count(out, "_bucket"); got != 2 {
		t.Errorf("idle histogram emitted %d bucket lines, want 2 (zero bucket and +Inf):\n%s", got, out)
	}
	if !strings.Contains(out, `le="+Inf"`) || !strings.Contains(out, "_count 0") {
		t.Errorf("idle histogram missing +Inf/count:\n%s", out)
	}

	sb.Reset()
	h.Record(1000) // bucket 10
	renderHistogram(&sb, telemetry.HistogramDef{Family: "probe_seconds", Seconds: true, H: &h})
	out = sb.String()
	// Buckets 0..10 plus +Inf.
	if got := strings.Count(out, "_bucket"); got != 12 {
		t.Errorf("emitted %d bucket lines, want 12:\n%s", got, out)
	}
	// Nanosecond buckets are scaled to seconds: upper(10) = 1023ns.
	if !strings.Contains(out, `le="1.023e-06"`) {
		t.Errorf("ns bucket bound not scaled to seconds:\n%s", out)
	}
}
