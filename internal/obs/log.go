package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds the process logger: format "json" emits one JSON object
// per line (for log shippers), anything else the human-readable text
// handler. All server components log through *slog.Logger so fields like
// trace_id, session, and replica stay machine-parseable in both formats.
func NewLogger(format string, w io.Writer) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}

// Discard returns a logger that drops everything; components take it as
// their default so logging is always nil-safe.
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
