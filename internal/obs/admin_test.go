package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"lambdadb/internal/engine"
)

// startAdmin binds an admin endpoint on an ephemeral loopback port and
// returns it plus its base URL.
func startAdmin(t *testing.T, cfg AdminConfig) (*Admin, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	a := NewAdmin(cfg)
	if err := a.Listen(); err != nil {
		t.Fatal(err)
	}
	go a.Serve()
	t.Cleanup(func() { a.Close() })
	return a, "http://" + a.Addr().String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminReadinessLifecycle walks /readyz through the full server
// lifecycle: recovering (no engine yet) → engine open but not accepting →
// serving → draining. /healthz must answer 200 throughout — liveness is
// independent of readiness.
func TestAdminReadinessLifecycle(t *testing.T) {
	a, base := startAdmin(t, AdminConfig{})

	if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "recovering") {
		t.Errorf("before SetDB: /readyz = %d %q, want 503 recovering", code, body)
	}
	if code, _ := get(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("before SetDB: /metrics = %d, want 503", code)
	}
	if code, body := get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("before SetDB: /healthz = %d %q, want 200 ok", code, body)
	}

	db := engine.Open()
	defer db.Close()
	a.SetDB(db)
	if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "not accepting") {
		t.Errorf("before SetServing: /readyz = %d %q, want 503 not accepting", code, body)
	}

	a.SetServing(true)
	if code, body := get(t, base+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("serving: /readyz = %d %q, want 200 ready", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != http.StatusOK || !strings.Contains(body, "lambdadb_statements_total") {
		t.Errorf("serving: /metrics = %d, body missing counters:\n%s", code, body)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("serving: /healthz = %d, want 200", code)
	}

	a.SetDraining()
	if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("draining: /readyz = %d %q, want 503 draining", code, body)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("draining: /healthz = %d, want 200 (liveness is not readiness)", code)
	}
}

func TestAdminMetricsContentType(t *testing.T) {
	a, base := startAdmin(t, AdminConfig{})
	db := engine.Open()
	defer db.Close()
	a.SetDB(db)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
}

func TestAdminPprofExposed(t *testing.T) {
	a, base := startAdmin(t, AdminConfig{})
	db := engine.Open()
	defer db.Close()
	a.SetDB(db)
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body missing profile index", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", code)
	}
}

// fakeReporter feeds canned replication rows through the engine's
// ReplicationReporter seam, standing in for internal/repl.
type fakeReporter struct{ rows []engine.ReplicationRow }

func (f *fakeReporter) ReplicationRows() []engine.ReplicationRow { return f.rows }

// TestAdminReplicaReadiness covers the replication-aware gates: a replica
// that never contacted its primary is not ready; once streaming, readiness
// follows the configured lag bound.
func TestAdminReplicaReadiness(t *testing.T) {
	db := engine.Open(engine.WithReadReplica("primary.example:5433"))
	defer db.Close()

	mk := func(maxLag int64) *Admin {
		a := NewAdmin(AdminConfig{MaxReplicaLag: maxLag})
		a.SetDB(db)
		a.SetServing(true)
		return a
	}

	// No reporter installed: the fallback row has LastContact -1.
	if reason := mk(0).notReady(); !strings.Contains(reason, "not contacted") {
		t.Errorf("never-contacted replica: notReady = %q, want contact failure", reason)
	}

	rep := &fakeReporter{}
	db.SetReplicationReporter(rep)
	lagRow := func(applied, primary uint64) engine.ReplicationRow {
		return engine.ReplicationRow{
			Role: "replica", Peer: "primary.example:5433", State: "streaming",
			AppliedClock: applied, PrimaryClock: primary, LastContact: 12,
		}
	}

	rep.rows = []engine.ReplicationRow{lagRow(90, 100)} // 10 records behind
	for _, tc := range []struct {
		maxLag    int64
		wantReady bool
	}{
		{0, true},  // lag gate disabled
		{20, true}, // within bound
		{9, false}, // over bound
	} {
		reason := mk(tc.maxLag).notReady()
		if ready := reason == ""; ready != tc.wantReady {
			t.Errorf("maxLag=%d: notReady = %q, want ready=%v", tc.maxLag, reason, tc.wantReady)
		}
		if !tc.wantReady && !strings.Contains(reason, fmt.Sprintf("lag %d", 10)) {
			t.Errorf("maxLag=%d: reason %q does not name the lag", tc.maxLag, reason)
		}
	}

	// Caught up: ready under any bound.
	rep.rows = []engine.ReplicationRow{lagRow(100, 100)}
	if reason := mk(1).notReady(); reason != "" {
		t.Errorf("caught-up replica: notReady = %q, want ready", reason)
	}

	// A primary is never lag-gated, even with a bound configured.
	pdb := engine.Open()
	defer pdb.Close()
	ap := NewAdmin(AdminConfig{MaxReplicaLag: 1})
	ap.SetDB(pdb)
	ap.SetServing(true)
	if reason := ap.notReady(); reason != "" {
		t.Errorf("primary: notReady = %q, want ready", reason)
	}
}
