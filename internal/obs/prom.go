// Package obs is the operational observability layer: a Prometheus
// /metrics exporter over the engine's counters and histograms, recovery-
// and replication-aware /healthz + /readyz probes, /debug/pprof, a
// size-rotated slow-query log sink, and structured-logging setup. It is
// surfaced by lambdaserver's -admin-addr HTTP listener and stands apart
// from the query path: scraping never touches a session or takes a query
// lock.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lambdadb/internal/engine"
	"lambdadb/internal/telemetry"
)

// namespace prefixes every exported metric family.
const namespace = "lambdadb"

// gaugeNames are the Metrics counters that are point-in-time gauges, not
// monotone counters; everything else in the snapshot is exported as a
// counter.
var gaugeNames = map[string]bool{
	"conns_active":            true,
	"queries_active":          true,
	"sessions_active":         true,
	"peak_query_bytes":        true,
	"wal_durable_lsn":         true,
	"wal_applied_clock":       true,
	"repl_replicas_active":    true,
	"router_backends_healthy": true,
}

// renderHistogram writes one histogram in the text exposition format. The
// power-of-two buckets cover all of int64, but emitting 64 mostly-zero
// bucket lines per family bloats every scrape, so only buckets up to the
// highest non-empty one are written (plus the mandatory +Inf).
func renderHistogram(sb *strings.Builder, d telemetry.HistogramDef) {
	name := namespace + "_" + d.Family
	label := "" // trailing comma; bucket lines append the le label after it
	bare := ""  // the label set for _sum/_count lines
	if d.LabelKey != "" {
		label = fmt.Sprintf("%s=\"%s\",", d.LabelKey, escapeLabel(d.LabelVal))
		bare = "{" + strings.TrimSuffix(label, ",") + "}"
	}
	s := d.H.Snapshot()
	top := 0
	for i, c := range s.Counts {
		if c > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += s.Counts[i]
		upper := float64(telemetry.BucketUpper(i))
		if d.Seconds {
			upper /= 1e9
		}
		fmt.Fprintf(sb, "%s_bucket{%sle=%q} %d\n", name, label, formatFloat(upper), cum)
	}
	fmt.Fprintf(sb, "%s_bucket{%sle=\"+Inf\"} %d\n", name, label, s.Count)
	sum := float64(s.Sum)
	if d.Seconds {
		sum /= 1e9
	}
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, bare, formatFloat(sum))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, bare, s.Count)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// RenderMetrics renders the full Prometheus text-format exposition for a
// database: every telemetry counter/gauge, every latency/size histogram,
// and one lag gauge set per replication peer.
func RenderMetrics(db *engine.DB) string {
	var sb strings.Builder
	m := db.Metrics()
	renderCounters(&sb, m)

	seenFamily := map[string]bool{}
	for _, d := range m.Hist().Defs() {
		fam := namespace + "_" + d.Family
		if !seenFamily[fam] {
			seenFamily[fam] = true
			if d.Help != "" {
				fmt.Fprintf(&sb, "# HELP %s %s\n", fam, d.Help)
			}
			fmt.Fprintf(&sb, "# TYPE %s histogram\n", fam)
		}
		renderHistogram(&sb, d)
	}

	renderReplication(&sb, db.ReplicationRows())
	return sb.String()
}

// RenderCounters renders only the counter/gauge families of m — the
// exposition for processes that have telemetry but no engine, like the
// cluster router.
func RenderCounters(m *telemetry.Metrics) string {
	var sb strings.Builder
	renderCounters(&sb, m)
	return sb.String()
}

func renderCounters(sb *strings.Builder, m *telemetry.Metrics) {
	for _, c := range m.Snapshot() {
		name := namespace + "_" + c.Name
		typ := "counter"
		if gaugeNames[c.Name] {
			typ = "gauge"
		}
		fmt.Fprintf(sb, "# TYPE %s %s\n%s %d\n", name, typ, name, c.Value)
	}
}

// renderReplication exports one gauge set per replication link: lag in
// records (commit-clock ticks the peer trails by), lag freshness in
// seconds (time since the peer was last heard from), and the link state.
func renderReplication(sb *strings.Builder, rows []engine.ReplicationRow) {
	if len(rows) == 0 {
		return
	}
	// Stable output order for scrapers and tests.
	sort.Slice(rows, func(i, j int) bool { return rows[i].Peer < rows[j].Peer })

	fmt.Fprintf(sb, "# HELP %s_repl_lag_records Commit-clock records the peer trails behind the primary.\n", namespace)
	fmt.Fprintf(sb, "# TYPE %s_repl_lag_records gauge\n", namespace)
	for _, r := range rows {
		lag := int64(r.PrimaryClock) - int64(r.AppliedClock)
		if lag < 0 {
			lag = 0
		}
		fmt.Fprintf(sb, "%s_repl_lag_records{role=\"%s\",peer=\"%s\"} %d\n",
			namespace, escapeLabel(r.Role), escapeLabel(r.Peer), lag)
	}
	fmt.Fprintf(sb, "# TYPE %s_repl_last_contact_seconds gauge\n", namespace)
	for _, r := range rows {
		contact := float64(-1)
		if r.LastContact >= 0 {
			contact = float64(r.LastContact) / 1000
		}
		fmt.Fprintf(sb, "%s_repl_last_contact_seconds{role=\"%s\",peer=\"%s\"} %s\n",
			namespace, escapeLabel(r.Role), escapeLabel(r.Peer), formatFloat(contact))
	}
	fmt.Fprintf(sb, "# TYPE %s_repl_link_info gauge\n", namespace)
	for _, r := range rows {
		fmt.Fprintf(sb, "%s_repl_link_info{role=\"%s\",peer=\"%s\",state=\"%s\"} 1\n",
			namespace, escapeLabel(r.Role), escapeLabel(r.Peer), escapeLabel(r.State))
	}
}
