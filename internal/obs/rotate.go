package obs

import (
	"fmt"
	"os"
	"sync"
)

// RotatingFile is an append-only io.Writer with size-based rotation: when a
// write would push the current file past MaxBytes, the file is renamed to
// <path>.1 (shifting <path>.1 to <path>.2, and so on up to Keep) and a
// fresh file is started. Writes are serialized; it is safe to share across
// goroutines. Used for the slow-query log so a long-lived server cannot
// fill the disk with JSON lines.
type RotatingFile struct {
	path     string
	maxBytes int64
	keep     int

	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenRotatingFile opens (creating or appending) path for rotated writes.
// maxBytes <= 0 disables rotation; keep <= 0 keeps one rotated file.
func OpenRotatingFile(path string, maxBytes int64, keep int) (*RotatingFile, error) {
	if keep <= 0 {
		keep = 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingFile{path: path, maxBytes: maxBytes, keep: keep, f: f, size: st.Size()}, nil
}

// Write appends p, rotating first when the file would exceed MaxBytes. A
// single write larger than MaxBytes still lands in one file (an empty file
// is never rotated), so entries are never split across files.
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.maxBytes > 0 && r.size > 0 && r.size+int64(len(p)) > r.maxBytes {
		if err := r.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	return n, err
}

// rotateLocked shifts path.i -> path.(i+1), dropping the oldest, and starts
// a fresh current file.
func (r *RotatingFile) rotateLocked() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	os.Remove(fmt.Sprintf("%s.%d", r.path, r.keep))
	for i := r.keep - 1; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", r.path, i), fmt.Sprintf("%s.%d", r.path, i+1))
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	r.f = f
	r.size = 0
	return nil
}

// Close closes the current file.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}
