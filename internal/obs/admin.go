package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"lambdadb/internal/engine"
)

// AdminConfig configures the admin HTTP listener.
type AdminConfig struct {
	// Addr is the HTTP listen address, e.g. ":8080" or "127.0.0.1:0".
	Addr string
	// MaxReplicaLag gates /readyz on a replica: when > 0, a replica whose
	// commit-clock lag behind the primary exceeds it answers 503, so a
	// router or load balancer drains it until it catches up. <= 0 disables
	// the lag gate (a replica is still not ready before first contact).
	MaxReplicaLag int64
}

// Admin is the operator-facing HTTP endpoint set: /metrics (Prometheus
// text format), /healthz (liveness), /readyz (traffic-readiness: recovery
// complete, accepting connections, replica not stale), and /debug/pprof.
//
// It is built to start before the engine exists: lambdaserver binds it
// ahead of OpenDir so /readyz truthfully reports "recovering" while WAL
// replay runs, and SetDB/SetServing flip it ready afterwards.
type Admin struct {
	cfg AdminConfig

	db       atomic.Pointer[engine.DB]
	serving  atomic.Bool // the SQL listener is accepting connections
	draining atomic.Bool // shutdown started; fail readiness first

	lis net.Listener
	hs  *http.Server
}

// NewAdmin returns an unstarted admin endpoint.
func NewAdmin(cfg AdminConfig) *Admin {
	a := &Admin{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.hs = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return a
}

// Listen binds the configured address; Addr reports the bound address
// afterwards (useful with ":0").
func (a *Admin) Listen() error {
	lis, err := net.Listen("tcp", a.cfg.Addr)
	if err != nil {
		return err
	}
	a.lis = lis
	return nil
}

// Addr returns the bound address, or nil before Listen.
func (a *Admin) Addr() net.Addr {
	if a.lis == nil {
		return nil
	}
	return a.lis.Addr()
}

// Serve serves HTTP until Close. It returns nil when the listener was
// closed by Close.
func (a *Admin) Serve() error {
	if a.lis == nil {
		return fmt.Errorf("obs: Serve before Listen")
	}
	err := a.hs.Serve(a.lis)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Close shuts the admin listener down.
func (a *Admin) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return a.hs.Shutdown(ctx)
}

// SetDB installs the engine once it is open. Calling it marks recovery
// complete: OpenDir only returns after WAL replay finished.
func (a *Admin) SetDB(db *engine.DB) { a.db.Store(db) }

// SetServing marks whether the SQL listener is accepting connections.
func (a *Admin) SetServing(on bool) { a.serving.Store(on) }

// SetDraining marks shutdown in progress: /readyz fails immediately so a
// load balancer stops routing here, while in-flight statements drain.
func (a *Admin) SetDraining() { a.draining.Store(true) }

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	db := a.db.Load()
	if db == nil {
		http.Error(w, "engine is not open yet (recovering)", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, RenderMetrics(db))
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness: the process is up and the admin loop is responsive. Keep it
	// independent of readiness so an orchestrator never restarts a healthy
	// process that is merely still recovering or draining.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (a *Admin) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if reason := a.notReady(); reason != "" {
		http.Error(w, reason, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// notReady returns "" when traffic may be routed here, else the reason.
func (a *Admin) notReady() string {
	if a.draining.Load() {
		return "draining"
	}
	db := a.db.Load()
	if db == nil {
		return "recovering: engine is not open yet"
	}
	if !a.serving.Load() {
		return "not accepting connections yet"
	}
	if db.ReplicaOf() == "" {
		return ""
	}
	// Replica: require at least one contact with the primary this process
	// lifetime (a replica that never connected serves arbitrarily stale
	// data), and optionally bound the staleness itself.
	for _, r := range db.ReplicationRows() {
		if r.Role != "replica" {
			continue
		}
		if r.LastContact < 0 {
			return fmt.Sprintf("replica has not contacted primary %s", db.ReplicaOf())
		}
		lag := int64(r.PrimaryClock) - int64(r.AppliedClock)
		if a.cfg.MaxReplicaLag > 0 && lag > a.cfg.MaxReplicaLag {
			return fmt.Sprintf("replica lag %d records exceeds the %d-record readiness bound", lag, a.cfg.MaxReplicaLag)
		}
	}
	return ""
}
