package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func writeLine(t *testing.T, r *RotatingFile, s string) {
	t.Helper()
	if _, err := r.Write([]byte(s)); err != nil {
		t.Fatal(err)
	}
}

func TestRotatingFileRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.log")
	r, err := OpenRotatingFile(path, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Each line is 10 bytes; two fit per file, the third forces rotation.
	writeLine(t, r, "line-001\n\n")
	writeLine(t, r, "line-002\n\n")
	writeLine(t, r, "line-003\n\n")

	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(cur) != "line-003\n\n" {
		t.Errorf("current file = %q, want only line-003", cur)
	}
	old, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if string(old) != "line-001\n\nline-002\n\n" {
		t.Errorf("rotated file = %q", old)
	}

	// Two more rotations: keep=2 means line-001's file falls off the end.
	writeLine(t, r, "line-004\n\n")
	writeLine(t, r, "line-005\n\n") // rotates: .1 has 003+004, .2 has 001+002
	writeLine(t, r, "line-006\n\n")
	writeLine(t, r, "line-007\n\n") // rotates: .1 has 005+006, .2 has 003+004
	for file, want := range map[string]string{
		path:        "line-007\n\n",
		path + ".1": "line-005\n\nline-006\n\n",
		path + ".2": "line-003\n\nline-004\n\n",
	} {
		got, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if string(got) != want {
			t.Errorf("%s = %q, want %q", file, got, want)
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("path.3 should not exist (keep=2), stat err = %v", err)
	}
}

// TestRotatingFileOversizedWrite: one write larger than maxBytes lands
// whole in a fresh file rather than being split or rejected.
func TestRotatingFileOversizedWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.log")
	r, err := OpenRotatingFile(path, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	writeLine(t, r, "short\n")
	big := strings.Repeat("x", 50) + "\n"
	writeLine(t, r, big)
	cur, _ := os.ReadFile(path)
	if string(cur) != big {
		t.Errorf("oversized write split or lost: current = %q", cur)
	}
	old, _ := os.ReadFile(path + ".1")
	if string(old) != "short\n" {
		t.Errorf("rotated = %q", old)
	}
	// The next write rotates again (the file is over budget), never panics.
	writeLine(t, r, "after\n")
	cur, _ = os.ReadFile(path)
	if string(cur) != "after\n" {
		t.Errorf("post-oversize write = %q", cur)
	}
}

// TestRotatingFileNoRotation: maxBytes <= 0 appends forever.
func TestRotatingFileNoRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.log")
	r, err := OpenRotatingFile(path, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 100; i++ {
		writeLine(t, r, "0123456789")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 1000 {
		t.Errorf("size = %d, want 1000", st.Size())
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Error("rotation happened with maxBytes=0")
	}
}

// TestRotatingFileReopenAppends: reopening an existing file appends and
// counts the existing bytes toward the rotation budget.
func TestRotatingFileReopenAppends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.log")
	r, err := OpenRotatingFile(path, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	writeLine(t, r, "first-open\n") // 11 bytes
	r.Close()

	r, err = OpenRotatingFile(path, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	writeLine(t, r, "second-open\n") // 12 bytes: 23 total, fits
	writeLine(t, r, "third-open\n")  // would be 34: rotates first
	cur, _ := os.ReadFile(path)
	if string(cur) != "third-open\n" {
		t.Errorf("current = %q", cur)
	}
	old, _ := os.ReadFile(path + ".1")
	if string(old) != "first-open\nsecond-open\n" {
		t.Errorf("rotated = %q", old)
	}
}

// TestRotatingFileConcurrent: parallel writers never interleave within a
// write and never lose bytes (every line written is present in exactly one
// of the files).
func TestRotatingFileConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.log")
	r, err := OpenRotatingFile(path, 400, 64)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fmt.Fprintf(r, "w%02d-%04d\n", w, i)
			}
		}(w)
	}
	wg.Wait()
	r.Close()

	seen := map[string]bool{}
	files, _ := filepath.Glob(path + "*")
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
			if len(line) != 8 || line[0] != 'w' {
				t.Fatalf("mangled line %q in %s", line, f)
			}
			if seen[line] {
				t.Fatalf("duplicate line %q", line)
			}
			seen[line] = true
		}
	}
	if len(seen) != writers*perWriter {
		t.Errorf("recovered %d lines, want %d", len(seen), writers*perWriter)
	}
}
