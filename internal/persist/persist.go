// Package persist implements database snapshots: serializing all tables
// visible at a point in time to a binary image and restoring them. The
// paper's introduction counts "recovery procedures" among the DBMS
// features that make the one-system approach attractive; this package is
// the corresponding substrate (snapshot-based recovery in the HyPer
// tradition — here an explicit binary image; deleted row versions are
// compacted away on save).
//
// Format (little endian):
//
//	magic "LMDB1\n"
//	u32 table count
//	per table:
//	  string name
//	  u32 column count, per column: string name, u8 type
//	  batches: u32 row count (0 terminates), then per column:
//	    u8 hasNulls (+ rowCount null bytes), then the typed payload
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

var magic = []byte("LMDB1\n")

// Save writes a snapshot of every table (rows visible at the current
// snapshot) to w.
func Save(store *storage.Store, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	names := store.TableNames()
	sort.Strings(names)
	if err := writeU32(bw, uint32(len(names))); err != nil {
		return err
	}
	snapshot := store.Snapshot()
	for _, name := range names {
		tbl, err := store.Table(name)
		if err != nil {
			return err
		}
		if err := saveTable(bw, tbl, snapshot); err != nil {
			return fmt.Errorf("table %q: %w", name, err)
		}
	}
	return bw.Flush()
}

// SaveFile writes the snapshot to a file, crash-safely: the image is
// written to a temp file which is fsynced before the atomic rename, and the
// parent directory is fsynced after it so the rename itself is durable. A
// failure at any point leaves the previous snapshot at path untouched and
// removes the temp file.
func SaveFile(store *storage.Store, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Save(store, f); err != nil {
		return fail(err)
	}
	if err := faultinject.Fire("persist.save.write"); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := faultinject.Fire("persist.save.rename"); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-committed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func saveTable(w *bufio.Writer, tbl *storage.Table, snapshot uint64) error {
	if err := writeString(w, tbl.Name()); err != nil {
		return err
	}
	schema := tbl.Schema()
	if err := writeU32(w, uint32(len(schema))); err != nil {
		return err
	}
	for _, c := range schema {
		if err := writeString(w, c.Name); err != nil {
			return err
		}
		if err := w.WriteByte(byte(c.Type)); err != nil {
			return err
		}
	}
	err := tbl.Scan(snapshot, func(b *types.Batch) error {
		return writeBatch(w, b)
	})
	if err != nil {
		return err
	}
	return writeU32(w, 0) // batch terminator
}

func writeBatch(w *bufio.Writer, b *types.Batch) error {
	n := b.Len()
	if n == 0 {
		return nil
	}
	if err := writeU32(w, uint32(n)); err != nil {
		return err
	}
	for _, c := range b.Cols {
		if err := writeColumn(w, c, n); err != nil {
			return err
		}
	}
	return nil
}

func writeColumn(w *bufio.Writer, c *types.Column, n int) error {
	if c.Nulls != nil {
		if err := w.WriteByte(1); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			bit := byte(0)
			if c.Nulls[i] {
				bit = 1
			}
			if err := w.WriteByte(bit); err != nil {
				return err
			}
		}
	} else if err := w.WriteByte(0); err != nil {
		return err
	}
	switch c.T {
	case types.Int64:
		for _, v := range c.Ints[:n] {
			if err := writeU64(w, uint64(v)); err != nil {
				return err
			}
		}
	case types.Float64:
		for _, v := range c.Floats[:n] {
			if err := writeU64(w, math.Float64bits(v)); err != nil {
				return err
			}
		}
	case types.String:
		for _, v := range c.Strs[:n] {
			if err := writeString(w, v); err != nil {
				return err
			}
		}
	case types.Bool:
		for _, v := range c.Bools[:n] {
			bit := byte(0)
			if v {
				bit = 1
			}
			if err := w.WriteByte(bit); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("cannot persist column of type %s", c.T)
	}
	return nil
}

// Load reads a snapshot image into a fresh store.
func Load(r io.Reader) (*storage.Store, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("not a database image (bad magic)")
	}
	count, err := readU32(br)
	if err != nil {
		return nil, err
	}
	store := storage.NewStore()
	for t := uint32(0); t < count; t++ {
		if err := loadTable(br, store); err != nil {
			return nil, err
		}
	}
	return store, nil
}

// LoadFile reads a snapshot image from a file.
func LoadFile(path string) (*storage.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func loadTable(r *bufio.Reader, store *storage.Store) error {
	name, err := readString(r)
	if err != nil {
		return err
	}
	ncols, err := readU32(r)
	if err != nil {
		return err
	}
	schema := make(types.Schema, ncols)
	for i := range schema {
		cname, err := readString(r)
		if err != nil {
			return err
		}
		tb, err := r.ReadByte()
		if err != nil {
			return err
		}
		ct := types.Type(tb)
		switch ct {
		case types.Int64, types.Float64, types.String, types.Bool:
		default:
			return fmt.Errorf("table %q: bad column type %d", name, tb)
		}
		schema[i] = types.ColumnInfo{Name: cname, Type: ct}
	}
	tbl, err := store.CreateTable(name, schema)
	if err != nil {
		return err
	}
	tx := store.Begin()
	for {
		n, err := readU32(r)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		b := types.NewBatch(schema)
		for j := range schema {
			if err := readColumn(r, b.Cols[j], int(n)); err != nil {
				return fmt.Errorf("table %q column %q: %w", name, schema[j].Name, err)
			}
		}
		if err := tx.Insert(tbl, b); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}

func readColumn(r *bufio.Reader, c *types.Column, n int) error {
	hasNulls, err := r.ReadByte()
	if err != nil {
		return err
	}
	var nulls []bool
	if hasNulls == 1 {
		nulls = make([]bool, n)
		for i := range nulls {
			b, err := r.ReadByte()
			if err != nil {
				return err
			}
			nulls[i] = b == 1
		}
	}
	for i := 0; i < n; i++ {
		switch c.T {
		case types.Int64:
			v, err := readU64(r)
			if err != nil {
				return err
			}
			c.AppendInt(int64(v))
		case types.Float64:
			v, err := readU64(r)
			if err != nil {
				return err
			}
			c.AppendFloat(math.Float64frombits(v))
		case types.String:
			s, err := readString(r)
			if err != nil {
				return err
			}
			c.AppendString(s)
		case types.Bool:
			b, err := r.ReadByte()
			if err != nil {
				return err
			}
			c.AppendBool(b == 1)
		}
	}
	if nulls != nil {
		c.Nulls = nulls
	}
	return nil
}

// ---- primitive encoding ----

func writeU32(w *bufio.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeU64(w *bufio.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r *bufio.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

const maxStringLen = 1 << 30

func readString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("corrupt image: string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
