// Package persist implements database snapshots: serializing all tables
// visible at a point in time to a binary image and restoring them. The
// paper's introduction counts "recovery procedures" among the DBMS
// features that make the one-system approach attractive; this package is
// the corresponding substrate (snapshot-based recovery in the HyPer
// tradition — binary images paired with the redo log in internal/wal).
//
// Two image kinds share one container format:
//
//   - logical images (Save/SaveFile) hold the rows visible at the current
//     snapshot, with deleted row versions compacted away. They are the
//     user-facing \save / -db images; loading one replays it as a single
//     commit into a fresh store.
//   - physical images (SavePhysical/SavePhysicalFile) hold the physical
//     row prefix as of an explicit commit-clock cut, including dead rows
//     and their per-row version stamps plus table incarnation IDs. They
//     are checkpoint images: redo-log records reference physical row
//     indexes, so recovery needs the exact pre-crash layout.
//
// Container format v3 (little endian):
//
//	magic "LMDB3\n"
//	u8  kind (1 = logical, 2 = physical)
//	u64 clock (physical: the image's commit-clock cut; logical: 0)
//	u32 table count
//	per table:
//	  string name
//	  u64 incarnation ID
//	  u32 column count, per column: string name, u8 type
//	  u32 index count, per index: string name, string column, u8 kind
//	  batches: u32 row count (0 terminates), then per column:
//	    u8 hasNulls (+ rowCount null bytes), then the typed payload;
//	    physical images append rowCount createdAt + rowCount deletedAt u64s
//	u32 CRC-32 (IEEE) of every preceding byte
//
// Only index definitions are persisted; index contents are rebuilt from the
// restored rows at load time (index state is a pure function of the
// physical rows, see internal/storage).
//
// Older images still load: v2 ("LMDB2\n") lacks the index-definition block,
// legacy v1 ("LMDB1\n") additionally lacks ID/clock/CRC. Any decode
// failure — bad magic, truncation, checksum mismatch, invalid structure —
// surfaces as a *CorruptImageError naming the byte offset, never as a raw
// decode error, so callers can reliably distinguish "damaged image" from
// "no image" (see LoadFile).
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

var (
	magicV1 = []byte("LMDB1\n")
	magicV2 = []byte("LMDB2\n")
	magicV3 = []byte("LMDB3\n")
)

const (
	kindLogical  byte = 1
	kindPhysical byte = 2
)

// CorruptImageError reports a snapshot image that could not be decoded:
// truncated, checksum-mismatched, or structurally invalid. Offset is the
// byte position at which decoding failed.
type CorruptImageError struct {
	Path   string // empty when loading from a stream
	Offset int64
	Reason string
}

func (e *CorruptImageError) Error() string {
	where := "image"
	if e.Path != "" {
		where = e.Path
	}
	return fmt.Sprintf("corrupt database image %s at byte %d: %s", where, e.Offset, e.Reason)
}

// Writer is the byte-oriented sink the image and redo-record encoders
// write to. *bufio.Writer and *bytes.Buffer both satisfy it.
type Writer interface {
	io.Writer
	io.ByteWriter
	io.StringWriter
}

// Reader is the byte-oriented source the decoders read from.
// *bufio.Reader and *bytes.Reader both satisfy it.
type Reader interface {
	io.Reader
	io.ByteReader
}

// Save writes a logical snapshot of every table (rows visible at the
// current snapshot, deleted versions compacted away) to w.
func Save(store *storage.Store, w io.Writer) error {
	return saveImage(store, w, kindLogical, store.Snapshot())
}

// SavePhysical writes a physical snapshot of every table as of the given
// commit clock: the physical row prefix created at or before clock, with
// per-row version stamps and table incarnation IDs. Recovery loads it with
// the exact pre-crash row layout so redo-log records resolve correctly.
func SavePhysical(store *storage.Store, w io.Writer, clock uint64) error {
	return saveImage(store, w, kindPhysical, clock)
}

func saveImage(store *storage.Store, w io.Writer, kind byte, clock uint64) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(magicV3); err != nil {
		return err
	}
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	hdrClock := uint64(0)
	if kind == kindPhysical {
		hdrClock = clock
	}
	if err := WriteU64(bw, hdrClock); err != nil {
		return err
	}
	names := store.TableNames()
	sort.Strings(names)
	if err := WriteU32(bw, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		tbl, err := store.Table(name)
		if err != nil {
			return err
		}
		if err := saveTable(bw, tbl, kind, clock); err != nil {
			return fmt.Errorf("table %q: %w", name, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The CRC trailer covers everything flushed so far and is written
	// straight to w, outside the hashed stream.
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// SaveFile writes a logical snapshot to a file, crash-safely: the image is
// written to a temp file which is fsynced before the atomic rename, and the
// parent directory is fsynced after it so the rename itself is durable. A
// failure at any point leaves the previous snapshot at path untouched and
// removes the temp file.
func SaveFile(store *storage.Store, path string) error {
	return saveFileAtomic(path, func(w io.Writer) error { return Save(store, w) })
}

// SavePhysicalFile is SaveFile for a physical snapshot as of clock.
func SavePhysicalFile(store *storage.Store, path string, clock uint64) error {
	return saveFileAtomic(path, func(w io.Writer) error { return SavePhysical(store, w, clock) })
}

func saveFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := faultinject.Fire("persist.save.write"); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := faultinject.Fire("persist.save.rename"); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-committed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func saveTable(w *bufio.Writer, tbl *storage.Table, kind byte, clock uint64) error {
	if err := WriteString(w, tbl.Name()); err != nil {
		return err
	}
	if err := WriteU64(w, tbl.ID()); err != nil {
		return err
	}
	if err := WriteSchema(w, tbl.Schema()); err != nil {
		return err
	}
	defs := tbl.IndexDefs()
	if err := WriteU32(w, uint32(len(defs))); err != nil {
		return err
	}
	for _, def := range defs {
		if err := WriteString(w, def.Name); err != nil {
			return err
		}
		if err := WriteString(w, def.Column); err != nil {
			return err
		}
		if err := w.WriteByte(byte(def.Kind)); err != nil {
			return err
		}
	}
	var err error
	if kind == kindPhysical {
		err = tbl.ScanPhysical(clock, func(b *types.Batch, createdAt, deletedAt []uint64) error {
			if b.Len() == 0 {
				return nil
			}
			if err := WriteBatch(w, b); err != nil {
				return err
			}
			for _, ts := range createdAt {
				if err := WriteU64(w, ts); err != nil {
					return err
				}
			}
			for _, ts := range deletedAt {
				if err := WriteU64(w, ts); err != nil {
					return err
				}
			}
			return nil
		})
	} else {
		err = tbl.Scan(clock, func(b *types.Batch) error {
			if b.Len() == 0 {
				return nil
			}
			return WriteBatch(w, b)
		})
	}
	if err != nil {
		return err
	}
	return WriteU32(w, 0) // batch terminator
}

// WriteSchema writes a column-count-prefixed schema (names and types).
func WriteSchema(w Writer, schema types.Schema) error {
	if err := WriteU32(w, uint32(len(schema))); err != nil {
		return err
	}
	for _, c := range schema {
		if err := WriteString(w, c.Name); err != nil {
			return err
		}
		if err := w.WriteByte(byte(c.Type)); err != nil {
			return err
		}
	}
	return nil
}

// ReadSchema reads a schema written by WriteSchema.
func ReadSchema(r Reader) (types.Schema, error) {
	ncols, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if ncols > maxColumns {
		return nil, fmt.Errorf("schema with %d columns", ncols)
	}
	schema := make(types.Schema, ncols)
	for i := range schema {
		cname, err := ReadString(r)
		if err != nil {
			return nil, err
		}
		tb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		ct := types.Type(tb)
		switch ct {
		case types.Int64, types.Float64, types.String, types.Bool:
		default:
			return nil, fmt.Errorf("bad column type %d", tb)
		}
		schema[i] = types.ColumnInfo{Name: cname, Type: ct}
	}
	return schema, nil
}

// WriteBatch writes a row-count-prefixed batch (columns only, no schema).
// The redo log shares this encoding for insert payloads.
func WriteBatch(w Writer, b *types.Batch) error {
	n := b.Len()
	if err := WriteU32(w, uint32(n)); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	for _, c := range b.Cols {
		if err := writeColumn(w, c, n); err != nil {
			return err
		}
	}
	return nil
}

// ReadBatch reads a batch written by WriteBatch into columns of the given
// schema (only the column types matter for decoding).
func ReadBatch(r Reader, schema types.Schema) (*types.Batch, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	return readBatchRows(r, schema, n)
}

func readBatchRows(r Reader, schema types.Schema, n uint32) (*types.Batch, error) {
	if n > maxBatchRows {
		return nil, fmt.Errorf("batch with %d rows", n)
	}
	b := types.NewBatch(schema)
	for j := range schema {
		if err := readColumn(r, b.Cols[j], int(n)); err != nil {
			return nil, fmt.Errorf("column %q: %w", schema[j].Name, err)
		}
	}
	return b, nil
}

func writeColumn(w Writer, c *types.Column, n int) error {
	if c.Nulls != nil {
		if err := w.WriteByte(1); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			bit := byte(0)
			if c.Nulls[i] {
				bit = 1
			}
			if err := w.WriteByte(bit); err != nil {
				return err
			}
		}
	} else if err := w.WriteByte(0); err != nil {
		return err
	}
	switch c.T {
	case types.Int64:
		for _, v := range c.Ints[:n] {
			if err := WriteU64(w, uint64(v)); err != nil {
				return err
			}
		}
	case types.Float64:
		for _, v := range c.Floats[:n] {
			if err := WriteU64(w, math.Float64bits(v)); err != nil {
				return err
			}
		}
	case types.String:
		for _, v := range c.Strs[:n] {
			if err := WriteString(w, v); err != nil {
				return err
			}
		}
	case types.Bool:
		for _, v := range c.Bools[:n] {
			bit := byte(0)
			if v {
				bit = 1
			}
			if err := w.WriteByte(bit); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("cannot persist column of type %s", c.T)
	}
	return nil
}

// Load reads a snapshot image into a fresh store. It accepts both v2
// (CRC-checked, logical or physical) and legacy v1 images; failures are
// *CorruptImageError.
func Load(r io.Reader) (*storage.Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return loadImage(data, "")
}

// LoadFile reads a snapshot image from a file. A missing file is reported
// as the os.Open error (errors.Is(err, fs.ErrNotExist)), so callers can
// treat "no image yet" as a fresh start; any other failure — unreadable
// file, bad magic, truncation, checksum mismatch — is a hard error (a
// *CorruptImageError for decode failures), so startup can never silently
// reinitialize over a damaged image.
func LoadFile(path string) (*storage.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return loadImage(data, path)
}

func loadImage(data []byte, path string) (*storage.Store, error) {
	corrupt := func(off int64, format string, args ...any) error {
		return &CorruptImageError{Path: path, Offset: off, Reason: fmt.Sprintf(format, args...)}
	}
	if len(data) < len(magicV3) {
		return nil, corrupt(int64(len(data)), "truncated before magic (%d bytes)", len(data))
	}
	var ver int
	switch {
	case bytes.Equal(data[:len(magicV1)], magicV1):
		ver = 1
	case bytes.Equal(data[:len(magicV2)], magicV2):
		ver = 2
	case bytes.Equal(data[:len(magicV3)], magicV3):
		ver = 3
	default:
		return nil, corrupt(0, "not a database image (bad magic)")
	}
	legacy := ver == 1

	body := data[len(magicV2):]
	kind := kindLogical
	clock := uint64(0)
	if !legacy {
		// Verify the CRC trailer before trusting any structure.
		if len(data) < len(magicV2)+1+8+4+4 {
			return nil, corrupt(int64(len(data)), "truncated header")
		}
		payload, tail := data[:len(data)-4], data[len(data)-4:]
		want := binary.LittleEndian.Uint32(tail)
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, corrupt(int64(len(payload)),
				"checksum mismatch (stored %08x, computed %08x; truncated or corrupted image)", want, got)
		}
		body = payload[len(magicV2):]
		kind = body[0]
		if kind != kindLogical && kind != kindPhysical {
			return nil, corrupt(int64(len(magicV2)), "unknown image kind %d", kind)
		}
		clock = binary.LittleEndian.Uint64(body[1:9])
		body = body[9:]
	}

	r := &offsetReader{data: body, base: int64(len(data)) - int64(len(body)) - trailerLen(legacy)}
	store := storage.NewStore()
	count, err := ReadU32(r)
	if err != nil {
		return nil, corrupt(r.offset(), "table count: %v", err)
	}
	for t := uint32(0); t < count; t++ {
		if err := loadTable(r, store, ver, kind); err != nil {
			var ce *CorruptImageError
			if errors.As(err, &ce) {
				return nil, err
			}
			return nil, corrupt(r.offset(), "table %d/%d: %v", t+1, count, err)
		}
	}
	if r.len() != 0 {
		return nil, corrupt(r.offset(), "%d trailing bytes after last table", r.len())
	}
	if kind == kindPhysical {
		store.RestoreClock(clock)
	}
	return store, nil
}

func trailerLen(legacy bool) int64 {
	if legacy {
		return 0
	}
	return 4
}

// offsetReader reads from an in-memory image while tracking the absolute
// byte offset for error reports.
type offsetReader struct {
	data []byte
	pos  int
	base int64 // offset of data[0] within the original file
}

func (r *offsetReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

func (r *offsetReader) ReadByte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *offsetReader) offset() int64 { return r.base + int64(r.pos) }
func (r *offsetReader) len() int      { return len(r.data) - r.pos }

func loadTable(r *offsetReader, store *storage.Store, ver int, kind byte) error {
	name, err := ReadString(r)
	if err != nil {
		return err
	}
	id := uint64(0)
	if ver >= 2 {
		if id, err = ReadU64(r); err != nil {
			return err
		}
	}
	schema, err := ReadSchema(r)
	if err != nil {
		return fmt.Errorf("table %q: %w", name, err)
	}
	var defs []storage.IndexDef
	if ver >= 3 {
		if defs, err = readIndexDefs(r, name); err != nil {
			return err
		}
	}

	if kind == kindPhysical {
		tbl, err := store.CreateTableWithID(name, schema, id)
		if err != nil {
			return err
		}
		for {
			n, err := ReadU32(r)
			if err != nil {
				return err
			}
			if n == 0 {
				return buildIndexes(tbl, defs)
			}
			b, err := readBatchRows(r, schema, n)
			if err != nil {
				return fmt.Errorf("table %q: %w", name, err)
			}
			createdAt := make([]uint64, n)
			deletedAt := make([]uint64, n)
			for i := range createdAt {
				if createdAt[i], err = ReadU64(r); err != nil {
					return err
				}
			}
			for i := range deletedAt {
				if deletedAt[i], err = ReadU64(r); err != nil {
					return err
				}
			}
			if err := tbl.RestoreRows(b, createdAt, deletedAt); err != nil {
				return err
			}
		}
	}

	// Logical image: replay the rows as one ordinary commit.
	tbl, err := store.CreateTable(name, schema)
	if err != nil {
		return err
	}
	tx := store.Begin()
	for {
		n, err := ReadU32(r)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		b, err := readBatchRows(r, schema, n)
		if err != nil {
			return fmt.Errorf("table %q: %w", name, err)
		}
		if err := tx.Insert(tbl, b); err != nil {
			tx.Rollback()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	return buildIndexes(tbl, defs)
}

// maxIndexes bounds the per-table index count during decode.
const maxIndexes = 1 << 12

// readIndexDefs reads a table's index-definition block (v3 images).
func readIndexDefs(r *offsetReader, table string) ([]storage.IndexDef, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxIndexes {
		return nil, fmt.Errorf("table %q: %d indexes", table, n)
	}
	defs := make([]storage.IndexDef, 0, n)
	for i := uint32(0); i < n; i++ {
		var def storage.IndexDef
		def.Table = table
		if def.Name, err = ReadString(r); err != nil {
			return nil, err
		}
		if def.Column, err = ReadString(r); err != nil {
			return nil, err
		}
		kb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		switch storage.IndexKind(kb) {
		case storage.HashIndex, storage.OrderedIndex:
			def.Kind = storage.IndexKind(kb)
		default:
			return nil, fmt.Errorf("table %q index %q: bad index kind %d", table, def.Name, kb)
		}
		defs = append(defs, def)
	}
	return defs, nil
}

// buildIndexes rebuilds a table's indexes from its restored rows. Contents
// are never persisted: index state is a pure function of the physical rows,
// so rebuild-at-load always converges with the pre-crash state.
func buildIndexes(tbl *storage.Table, defs []storage.IndexDef) error {
	for _, def := range defs {
		if err := tbl.AddIndex(def); err != nil {
			return fmt.Errorf("table %q: rebuild index %q: %w", tbl.Name(), def.Name, err)
		}
	}
	return nil
}

func readColumn(r Reader, c *types.Column, n int) error {
	hasNulls, err := r.ReadByte()
	if err != nil {
		return err
	}
	var nulls []bool
	switch hasNulls {
	case 0:
	case 1:
		nulls = make([]bool, n)
		for i := range nulls {
			b, err := r.ReadByte()
			if err != nil {
				return err
			}
			nulls[i] = b == 1
		}
	default:
		return fmt.Errorf("bad null marker %d", hasNulls)
	}
	for i := 0; i < n; i++ {
		switch c.T {
		case types.Int64:
			v, err := ReadU64(r)
			if err != nil {
				return err
			}
			c.AppendInt(int64(v))
		case types.Float64:
			v, err := ReadU64(r)
			if err != nil {
				return err
			}
			c.AppendFloat(math.Float64frombits(v))
		case types.String:
			s, err := ReadString(r)
			if err != nil {
				return err
			}
			c.AppendString(s)
		case types.Bool:
			b, err := r.ReadByte()
			if err != nil {
				return err
			}
			c.AppendBool(b == 1)
		}
	}
	if nulls != nil {
		c.Nulls = nulls
	}
	return nil
}

// ---- primitive encoding ----

const (
	maxStringLen = 1 << 30
	maxColumns   = 1 << 16
	maxBatchRows = 1 << 24
)

// WriteU32 writes a little-endian uint32.
func WriteU32(w Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

// WriteU64 writes a little-endian uint64.
func WriteU64(w Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

// WriteString writes a length-prefixed string.
func WriteString(w Writer, s string) error {
	if err := WriteU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// ReadU32 reads a little-endian uint32.
func ReadU32(r Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// ReadU64 reads a little-endian uint64.
func ReadU64(r Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// ReadString reads a length-prefixed string.
func ReadString(r Reader) (string, error) {
	n, err := ReadU32(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("corrupt image: string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
