package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// saveSnapshot writes the store to path and fails the test on error.
func saveSnapshot(t *testing.T, s *storage.Store, path string) {
	t.Helper()
	if err := SaveFile(s, path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
}

// countRows loads the image at path and returns the row count of table.
func countRows(t *testing.T, path, table string) int {
	t.Helper()
	s, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile(%q): %v", path, err)
	}
	tbl, err := s.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.NumRows(s.Snapshot())
}

// singleTableStore builds a store with one table of n rows.
func singleTableStore(t *testing.T, n int64) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	tbl, err := s.CreateTable("t", types.Schema{{Name: "x", Type: types.Int64}})
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	b := types.NewBatch(tbl.Schema())
	for i := int64(0); i < n; i++ {
		b.AppendRow([]types.Value{types.NewInt(i)})
	}
	if err := tx.Insert(tbl, b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFailedSavePreservesPreviousSnapshot injects failures at both
// crash-relevant points of SaveFile — after the image bytes are written
// (before fsync) and after the temp file is durable (before the rename) —
// and verifies the previous snapshot at the destination stays intact and
// loadable, with no temp file left behind.
func TestFailedSavePreservesPreviousSnapshot(t *testing.T) {
	for _, point := range []string{"persist.save.write", "persist.save.rename"} {
		t.Run(point, func(t *testing.T) {
			defer faultinject.Reset()
			dir := t.TempDir()
			path := filepath.Join(dir, "db.img")

			saveSnapshot(t, singleTableStore(t, 100), path)

			boom := errors.New("injected I/O failure")
			faultinject.FailOnce(point, boom)
			err := SaveFile(singleTableStore(t, 999), path)
			if !errors.Is(err, boom) {
				t.Fatalf("SaveFile = %v, want injected failure", err)
			}
			if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
				t.Fatalf("temp file left behind after failed save: %v", serr)
			}
			if got := countRows(t, path, "t"); got != 100 {
				t.Fatalf("previous snapshot corrupted: %d rows, want 100", got)
			}

			// The hook fired once; the retry goes through and replaces the
			// image atomically.
			saveSnapshot(t, singleTableStore(t, 999), path)
			if got := countRows(t, path, "t"); got != 999 {
				t.Fatalf("retried save: %d rows, want 999", got)
			}
		})
	}
}

// TestFailedFirstSaveLeavesNothing: when there is no previous snapshot, a
// failed save must not leave a partial image at the destination.
func TestFailedFirstSaveLeavesNothing(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "db.img")
	faultinject.FailOnce("persist.save.write", errors.New("disk full"))
	if err := SaveFile(singleTableStore(t, 10), path); err == nil {
		t.Fatal("SaveFile succeeded despite injected failure")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed first save left files: %v", entries)
	}
}
