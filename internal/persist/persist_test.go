package persist

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// buildStore creates a store with two tables including NULLs and all types.
func buildStore(t *testing.T) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	tbl, err := s.CreateTable("mixed", types.Schema{
		{Name: "i", Type: types.Int64},
		{Name: "f", Type: types.Float64},
		{Name: "s", Type: types.String},
		{Name: "b", Type: types.Bool},
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	b := types.NewBatch(tbl.Schema())
	b.AppendRow([]types.Value{types.NewInt(-7), types.NewFloat(2.5), types.NewString("hello"), types.NewBool(true)})
	b.AppendRow([]types.Value{types.NewNull(types.Int64), types.NewFloat(-0.125), types.NewString(""), types.NewBool(false)})
	b.AppendRow([]types.Value{types.NewInt(42), types.NewNull(types.Float64), types.NewNull(types.String), types.NewNull(types.Bool)})
	if err := tx.Insert(tbl, b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	big, err := s.CreateTable("big", types.Schema{{Name: "x", Type: types.Int64}})
	if err != nil {
		t.Fatal(err)
	}
	tx = s.Begin()
	bb := types.NewBatch(big.Schema())
	for i := int64(0); i < 5000; i++ {
		bb.AppendRow([]types.Value{types.NewInt(i)})
	}
	if err := tx.Insert(big, bb); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

func allRows(t *testing.T, s *storage.Store, table string) [][]types.Value {
	t.Helper()
	tbl, err := s.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]types.Value
	err = tbl.Scan(s.Snapshot(), func(b *types.Batch) error {
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, b.Row(i))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := buildStore(t)
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"mixed", "big"} {
		want := allRows(t, src, table)
		got := allRows(t, dst, table)
		if len(want) != len(got) {
			t.Fatalf("%s: %d rows, want %d", table, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				a, b := want[i][j], got[i][j]
				if a.Null != b.Null || (!a.Null && !a.Equal(b)) {
					t.Fatalf("%s row %d col %d: %v vs %v", table, i, j, a, b)
				}
			}
		}
	}
	// Schemas survive too.
	srcTbl, _ := src.Table("mixed")
	dstTbl, _ := dst.Table("mixed")
	if !srcTbl.Schema().Equal(dstTbl.Schema()) {
		t.Errorf("schema mismatch: %v vs %v", srcTbl.Schema(), dstTbl.Schema())
	}
}

func TestSaveCompactsDeletedRows(t *testing.T) {
	s := buildStore(t)
	tbl, _ := s.Table("big")
	tx := s.Begin()
	for i := 0; i < 100; i++ {
		if err := tx.Delete(tbl, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(s, &buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dstTbl, _ := dst.Table("big")
	if got := dstTbl.PhysicalRows(); got != 4900 {
		t.Errorf("restored physical rows = %d, want 4900 (compacted)", got)
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := buildStore(t)
	path := filepath.Join(t.TempDir(), "db.img")
	if err := SaveFile(s, path); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(allRows(t, dst, "mixed")) != 3 {
		t.Error("file round trip lost rows")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a database image at all")); err == nil {
		t.Error("garbage input should fail")
	}
	if _, err := Load(strings.NewReader("LMDB1\n")); err == nil {
		t.Error("truncated input should fail")
	}
	// Valid magic, corrupt body.
	var buf bytes.Buffer
	buf.WriteString("LMDB1\n")
	buf.Write([]byte{1, 0, 0, 0})         // one table
	buf.Write([]byte{255, 255, 255, 255}) // absurd name length
	if _, err := Load(&buf); err == nil {
		t.Error("corrupt name length should fail")
	}
}

func TestEmptyStoreRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(storage.NewStore(), &buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dst.TableNames()) != 0 {
		t.Errorf("tables = %v", dst.TableNames())
	}
}

func TestEmptyTableRoundTrip(t *testing.T) {
	s := storage.NewStore()
	if _, err := s.CreateTable("empty", types.Schema{{Name: "x", Type: types.Float64}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(s, &buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := dst.Table("empty")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows(dst.Snapshot()) != 0 {
		t.Error("empty table gained rows")
	}
}
