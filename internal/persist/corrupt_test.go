package persist

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// image serializes the test store to a v2 logical image in memory.
func image(t *testing.T, s *storage.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(s, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsBitFlips flips one byte at a spread of positions across
// the image — magic, header, table metadata, row payload, CRC trailer —
// and requires every mutation to surface as a *CorruptImageError. The CRC
// covers the whole image, so no single-byte flip may load.
func TestLoadRejectsBitFlips(t *testing.T) {
	data := image(t, buildStore(t))
	// A spread of offsets: every region of a ~100KB image without running
	// 100k subtests.
	offsets := []int{0, 3, 6, 7, 10, 15, 20, 40, 80, len(data) / 2, len(data) - 20, len(data) - 5, len(data) - 1}
	for _, off := range offsets {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0x01
		_, err := Load(bytes.NewReader(mutated))
		if err == nil {
			t.Errorf("flip at %d: image loaded successfully", off)
			continue
		}
		var ce *CorruptImageError
		if !errors.As(err, &ce) {
			t.Errorf("flip at %d: error %v, want *CorruptImageError", off, err)
		}
	}
}

// TestLoadRejectsTruncation truncates the image at a spread of lengths;
// every prefix must fail with a *CorruptImageError naming an offset within
// the data.
func TestLoadRejectsTruncation(t *testing.T) {
	data := image(t, buildStore(t))
	for _, n := range []int{0, 1, 5, 6, 7, 14, 18, 30, len(data) / 4, len(data) / 2, len(data) - 5, len(data) - 1} {
		_, err := Load(bytes.NewReader(data[:n]))
		if err == nil {
			t.Errorf("truncation to %d bytes: image loaded successfully", n)
			continue
		}
		var ce *CorruptImageError
		if !errors.As(err, &ce) {
			t.Errorf("truncation to %d: error %v, want *CorruptImageError", n, err)
			continue
		}
		if ce.Offset < 0 || ce.Offset > int64(len(data)) {
			t.Errorf("truncation to %d: error offset %d out of range", n, ce.Offset)
		}
	}
}

func TestLoadFileDistinguishesMissingFromCorrupt(t *testing.T) {
	dir := t.TempDir()

	// Missing file: fs.ErrNotExist (fresh start), not a corruption error.
	_, err := LoadFile(filepath.Join(dir, "nope.db"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: error %v, want fs.ErrNotExist", err)
	}
	var ce *CorruptImageError
	if errors.As(err, &ce) {
		t.Fatalf("missing file misreported as corrupt: %v", err)
	}

	// Damaged file: a typed *CorruptImageError naming the path, never
	// fs.ErrNotExist.
	path := filepath.Join(dir, "bad.db")
	data := image(t, buildStore(t))
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(path)
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt file: error %v, want *CorruptImageError", err)
	}
	if ce.Path != path {
		t.Errorf("CorruptImageError.Path = %q, want %q", ce.Path, path)
	}
	if errors.Is(err, fs.ErrNotExist) {
		t.Error("corrupt file misreported as not-exist")
	}
}

// TestPhysicalRoundTrip checks the checkpoint image kind: physical row
// positions, version stamps (including dead rows), the commit clock, and
// table incarnation IDs all survive a save/load cycle.
func TestPhysicalRoundTrip(t *testing.T) {
	s := storage.NewStore()
	tbl, err := s.CreateTable("t", types.Schema{{Name: "x", Type: types.Int64}})
	if err != nil {
		t.Fatal(err)
	}
	insert := func(vals ...int64) {
		t.Helper()
		tx := s.Begin()
		b := types.NewBatch(tbl.Schema())
		for _, v := range vals {
			b.AppendRow([]types.Value{types.NewInt(v)})
		}
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	insert(10, 20, 30) // ts 1
	tx := s.Begin()
	if err := tx.Delete(tbl, 1); err != nil { // kill value 20
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil { // ts 2
		t.Fatal(err)
	}
	insert(40) // ts 3

	var buf bytes.Buffer
	if err := SavePhysical(s, &buf, s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s2.Snapshot(), s.Snapshot(); got != want {
		t.Errorf("restored clock %d, want %d", got, want)
	}
	tbl2, err := s2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.ID() != tbl.ID() {
		t.Errorf("restored incarnation ID %d, want %d", tbl2.ID(), tbl.ID())
	}
	// Dead rows keep their physical slots: 4 physical, 3 visible now, and
	// the pre-delete snapshot still sees the deleted row.
	if got := tbl2.PhysicalRows(); got != 4 {
		t.Errorf("physical rows = %d, want 4", got)
	}
	if got := tbl2.NumRows(s2.Snapshot()); got != 3 {
		t.Errorf("visible rows = %d, want 3", got)
	}
	if got := tbl2.NumRows(1); got != 3 { // at ts 1: rows 10,20,30 all live
		t.Errorf("rows visible at ts 1 = %d, want 3", got)
	}
	if got := tbl2.NumRows(2); got != 2 { // after the delete, before insert 40
		t.Errorf("rows visible at ts 2 = %d, want 2", got)
	}

	// A physical image cut at an earlier clock excludes later rows.
	var buf2 bytes.Buffer
	if err := SavePhysical(s, &buf2, 2); err != nil {
		t.Fatal(err)
	}
	s3, err := Load(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	tbl3, err := s3.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl3.PhysicalRows(); got != 3 {
		t.Errorf("clock-2 image physical rows = %d, want 3 (row 40 is newer)", got)
	}
	if got := s3.Snapshot(); got != 2 {
		t.Errorf("clock-2 image clock = %d, want 2", got)
	}
}
