package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	mrand "math/rand"
	"sync"
)

// Trace IDs correlate one client request across every observability
// surface: the wire frame that carried it, the server session that ran it,
// system.query_log, the slow-query JSON log, and the error frame sent
// back. They are opaque strings; ours are 16 hex characters.

// traceKey is the context key for the statement trace ID.
type traceKey struct{}

// WithTraceID returns a context carrying the trace ID. An empty id returns
// ctx unchanged.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace ID carried by ctx, or "".
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

var fallbackMu sync.Mutex

// NewTraceID returns a fresh random trace ID (16 hex chars). It never
// fails: if the OS entropy source errors it falls back to math/rand, which
// is fine for correlation (trace IDs are not secrets).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		fallbackMu.Lock()
		v := mrand.Uint64()
		fallbackMu.Unlock()
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}
