package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of a Histogram: bucket i counts
// values v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0). 64 buckets
// cover the full non-negative int64 range, so no recorded value is ever
// clipped.
const HistBuckets = 64

// Histogram is a lock-free bounded histogram with power-of-two buckets
// (HDR-style: constant relative error of at most 2x, constant memory).
// Record is three uncontended-atomic adds — cheap enough for hot paths
// that fire once per statement, fsync, or replication apply. The zero
// value is ready to use.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64
}

// Record folds one value in. Negative values count as zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	// bits.Len64(0) == 0, bits.Len64(1) == 1, ... so bucket i holds
	// values needing exactly i bits: [2^(i-1), 2^i).
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time copy of a histogram. Count is derived
// from the bucket counts (not a separate counter), so quantile math over a
// snapshot is always internally consistent even when taken concurrently
// with writers.
type HistSnapshot struct {
	Counts [HistBuckets]int64
	Count  int64
	Sum    int64
}

// Snapshot copies the bucket counts. Concurrent Records may land between
// individual bucket reads; each bucket is exact and Count always equals
// the sum of Counts.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// BucketUpper returns the inclusive upper bound of bucket i: values in
// bucket i satisfy v < BucketUpper(i)+1. Bucket 0 is the zero bucket.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket where the cumulative count crosses q*Count. Returns 0 on an empty
// snapshot. The estimate errs high by at most 2x (one power-of-two bucket).
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Statement kinds for latency histograms.
const (
	KindSelect = "select"
	KindDML    = "dml"
	KindDDL    = "ddl"
	KindOther  = "other"
)

// Histograms is the engine-wide latency/size histogram set, the
// distribution counterpart of the Metrics counters. All recording methods
// are nil-safe and respect the disabled flag, so call sites never branch.
type Histograms struct {
	disabled bool // set by NewDisabledHistograms (overhead A/B baselines)

	// Statement latency by kind, nanoseconds.
	StmtSelect Histogram
	StmtDML    Histogram
	StmtDDL    Histogram
	StmtOther  Histogram

	// Per-stage statement breakdown, nanoseconds. CommitWait is recorded by
	// the WAL group-commit path (time a committer parks waiting for fsync).
	StageParsePlan  Histogram
	StageExec       Histogram
	StageCommitWait Histogram

	// Durability: fsync syscall latency (ns) and how many redo records each
	// group-commit flush made durable (batch size; >1 = amortization).
	WalFsync        Histogram
	WalBatchRecords Histogram

	// Replication: how far (in commit-clock ticks ≈ commits) the replica
	// trailed the primary's last-reported clock at each apply.
	ReplApplyLag Histogram
}

// NewDisabledHistograms returns a set whose Record* methods are no-ops:
// the baseline side of the armed-telemetry overhead smoke.
func NewDisabledHistograms() *Histograms { return &Histograms{disabled: true} }

// Stmt returns the statement-latency histogram for kind.
func (h *Histograms) Stmt(kind string) *Histogram {
	switch kind {
	case KindSelect:
		return &h.StmtSelect
	case KindDML:
		return &h.StmtDML
	case KindDDL:
		return &h.StmtDDL
	}
	return &h.StmtOther
}

// RecordStmt folds one statement latency into the by-kind histogram.
func (h *Histograms) RecordStmt(kind string, ns int64) {
	if h == nil || h.disabled {
		return
	}
	h.Stmt(kind).Record(ns)
}

// RecordStages folds one statement's parse+plan and execute durations in.
func (h *Histograms) RecordStages(parsePlanNs, execNs int64) {
	if h == nil || h.disabled {
		return
	}
	h.StageParsePlan.Record(parsePlanNs)
	h.StageExec.Record(execNs)
}

// RecordCommitWait folds one commit's durability wait in.
func (h *Histograms) RecordCommitWait(ns int64) {
	if h == nil || h.disabled {
		return
	}
	h.StageCommitWait.Record(ns)
}

// RecordWalFsync folds one group-commit flush in: the fsync+write latency
// and the number of redo records the batch covered.
func (h *Histograms) RecordWalFsync(ns, records int64) {
	if h == nil || h.disabled {
		return
	}
	h.WalFsync.Record(ns)
	h.WalBatchRecords.Record(records)
}

// RecordReplApplyLag folds one replication apply's clock lag in.
func (h *Histograms) RecordReplApplyLag(records int64) {
	if h == nil || h.disabled {
		return
	}
	h.ReplApplyLag.Record(records)
}

// HistogramDef names one histogram for exporters: Row is the system.metrics
// row base ("<Row>_p50" etc.), Family/LabelKey/LabelVal shape the
// Prometheus family (histograms of one family differ only by label), and
// Seconds marks nanosecond-valued histograms that exporters should scale
// to seconds.
type HistogramDef struct {
	Row      string
	Family   string
	LabelKey string
	LabelVal string
	Seconds  bool
	Help     string
	H        *Histogram
}

// Defs enumerates every histogram with its export metadata, in a stable
// order.
func (h *Histograms) Defs() []HistogramDef {
	stmtHelp := "Statement wall-clock latency by statement kind."
	stageHelp := "Statement latency broken down by stage."
	return []HistogramDef{
		{Row: "stmt_latency_select_ns", Family: "statement_latency_seconds", LabelKey: "kind", LabelVal: KindSelect, Seconds: true, Help: stmtHelp, H: &h.StmtSelect},
		{Row: "stmt_latency_dml_ns", Family: "statement_latency_seconds", LabelKey: "kind", LabelVal: KindDML, Seconds: true, Help: stmtHelp, H: &h.StmtDML},
		{Row: "stmt_latency_ddl_ns", Family: "statement_latency_seconds", LabelKey: "kind", LabelVal: KindDDL, Seconds: true, Help: stmtHelp, H: &h.StmtDDL},
		{Row: "stmt_latency_other_ns", Family: "statement_latency_seconds", LabelKey: "kind", LabelVal: KindOther, Seconds: true, Help: stmtHelp, H: &h.StmtOther},
		{Row: "stmt_stage_parse_plan_ns", Family: "statement_stage_seconds", LabelKey: "stage", LabelVal: "parse_plan", Seconds: true, Help: stageHelp, H: &h.StageParsePlan},
		{Row: "stmt_stage_exec_ns", Family: "statement_stage_seconds", LabelKey: "stage", LabelVal: "exec", Seconds: true, Help: stageHelp, H: &h.StageExec},
		{Row: "stmt_stage_commit_wait_ns", Family: "statement_stage_seconds", LabelKey: "stage", LabelVal: "commit_wait", Seconds: true, Help: stageHelp, H: &h.StageCommitWait},
		{Row: "wal_fsync_ns", Family: "wal_fsync_seconds", Seconds: true, Help: "Write+fsync latency of one group-commit flush.", H: &h.WalFsync},
		{Row: "wal_group_commit_records", Family: "wal_group_commit_records", Help: "Redo records made durable per group-commit fsync.", H: &h.WalBatchRecords},
		{Row: "repl_apply_lag_records", Family: "repl_apply_lag_records", Help: "Commit-clock lag behind the primary at each replicated apply.", H: &h.ReplApplyLag},
	}
}

// HistogramSummaries renders every histogram as p50/p95/p99/count rows for
// the system.metrics virtual table, after the plain counters.
func (h *Histograms) HistogramSummaries() []Counter {
	if h == nil {
		return nil
	}
	var out []Counter
	for _, d := range h.Defs() {
		s := d.H.Snapshot()
		out = append(out,
			Counter{Name: d.Row + "_p50", Value: s.Quantile(0.50)},
			Counter{Name: d.Row + "_p95", Value: s.Quantile(0.95)},
			Counter{Name: d.Row + "_p99", Value: s.Quantile(0.99)},
			Counter{Name: d.Row + "_count", Value: s.Count},
		)
	}
	return out
}
