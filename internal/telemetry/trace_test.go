package telemetry

import (
	"context"
	"testing"
)

func TestTraceIDContext(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Errorf("TraceID(empty ctx) = %q, want \"\"", got)
	}
	if got := WithTraceID(ctx, ""); got != ctx {
		t.Error("WithTraceID(ctx, \"\") should return ctx unchanged")
	}
	ctx2 := WithTraceID(ctx, "abc123")
	if got := TraceID(ctx2); got != "abc123" {
		t.Errorf("TraceID = %q, want %q", got, "abc123")
	}
	// Nested IDs shadow, as with any context value.
	if got := TraceID(WithTraceID(ctx2, "def456")); got != "def456" {
		t.Errorf("nested TraceID = %q, want %q", got, "def456")
	}
}

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("NewTraceID() = %q, want 16 hex chars", id)
		}
		for _, c := range id {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("NewTraceID() = %q contains non-hex %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q within 100 draws", id)
		}
		seen[id] = true
	}
}
