package telemetry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotNames pins the metric naming: every counter that existed
// before the reflection-based snapshot must keep its exact spelling (the
// system.metrics virtual table is queried by name), and the new WAL and
// replication counters must be present.
func TestSnapshotNames(t *testing.T) {
	m := &Metrics{}
	got := map[string]bool{}
	var order []string
	for _, c := range m.Snapshot() {
		if got[c.Name] {
			t.Fatalf("duplicate metric name %q", c.Name)
		}
		got[c.Name] = true
		order = append(order, c.Name)
	}
	want := []string{
		// pre-existing names, pinned
		"statements_total", "statements_ok", "statements_error",
		"statements_cancelled", "statements_timeout",
		"rows_returned", "rows_affected", "slow_queries",
		"exec_nanos_total", "peak_query_bytes",
		"queries_active", "sessions_active",
		"conns_opened", "conns_closed", "conns_rejected", "conns_active",
		"wal_appends", "wal_fsyncs", "wal_bytes", "checkpoints",
		"index_scans", "index_rows_read", "analyze_runs",
		// new in this PR
		"wal_durable_lsn", "wal_applied_clock",
		"repl_records_shipped", "repl_bytes_shipped",
		"repl_records_applied", "repl_records_skipped",
		"repl_reconnects", "repl_resyncs", "repl_snapshots_sent",
		"repl_slow_kicks", "repl_replicas_active",
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("metric %q missing from Snapshot (have %v)", name, order)
		}
	}
}

// TestSnapshotReadsValues checks the reflection path actually reads the
// right field for a sample of counters.
func TestSnapshotReadsValues(t *testing.T) {
	m := &Metrics{}
	m.StatementsOK.Store(3)
	m.WalDurableLsn.Store(42)
	m.ReplRecordsApplied.Store(7)
	vals := map[string]int64{}
	for _, c := range m.Snapshot() {
		vals[c.Name] = c.Value
	}
	for name, want := range map[string]int64{
		"statements_ok":        3,
		"wal_durable_lsn":      42,
		"repl_records_applied": 7,
		"statements_error":     0,
	} {
		if vals[name] != want {
			t.Errorf("%s = %d, want %d", name, vals[name], want)
		}
	}
}

// TestStatusOf pins the outcome classification, including precedence when
// an error chain carries more than one sentinel: DeadlineExceeded wins over
// Canceled (a query that timed out was cancelled *because* of the deadline,
// and "timeout" is the actionable status).
func TestStatusOf(t *testing.T) {
	wrapped := fmt.Errorf("exec: %w", context.Canceled)
	deepWrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", context.DeadlineExceeded))
	joined := errors.Join(errors.New("operator failed"), context.DeadlineExceeded)
	both := errors.Join(context.Canceled, context.DeadlineExceeded)
	for _, tc := range []struct {
		err  error
		want string
	}{
		{nil, StatusOK},
		{errors.New("boom"), StatusError},
		{context.Canceled, StatusCancelled},
		{context.DeadlineExceeded, StatusTimeout},
		{wrapped, StatusCancelled},
		{deepWrapped, StatusTimeout},
		{joined, StatusTimeout},
		{both, StatusTimeout}, // deadline checked first
		{fmt.Errorf("ctx: %w", both), StatusTimeout},
	} {
		if got := StatusOf(tc.err); got != tc.want {
			t.Errorf("StatusOf(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestQueryLogWraparound drives the ring past its capacity and checks the
// eviction order: the snapshot holds exactly the last cap entries, oldest
// first, with contiguous IDs.
func TestQueryLogWraparound(t *testing.T) {
	const cap, total = 8, 29
	l := NewQueryLog(cap)
	for i := 0; i < total; i++ {
		l.Add(QueryLogEntry{Statement: fmt.Sprintf("stmt %d", i)})
	}
	got := l.Snapshot()
	if len(got) != cap {
		t.Fatalf("snapshot len = %d, want %d", len(got), cap)
	}
	for i, e := range got {
		wantID := int64(total - cap + i)
		if e.ID != wantID {
			t.Errorf("entry %d ID = %d, want %d", i, e.ID, wantID)
		}
		if want := fmt.Sprintf("stmt %d", wantID); e.Statement != want {
			t.Errorf("entry %d statement = %q, want %q", i, e.Statement, want)
		}
	}
}

// TestQueryLogConcurrentWraparound hammers a small ring from many writers
// while readers snapshot it, then checks the invariants that must survive
// any interleaving: every snapshot is ascending and contiguous in ID, no
// snapshot exceeds capacity, and all IDs were eventually assigned exactly
// once. Run under -race this also proves the locking discipline.
func TestQueryLogConcurrentWraparound(t *testing.T) {
	const cap, writers, perWriter = 16, 8, 200
	l := NewQueryLog(cap)
	stop := make(chan struct{})
	snapErr := make(chan error, 1)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := l.Snapshot()
			if len(s) > cap {
				snapErr <- fmt.Errorf("snapshot len %d exceeds cap %d", len(s), cap)
				return
			}
			for i := 1; i < len(s); i++ {
				if s[i].ID != s[i-1].ID+1 {
					snapErr <- fmt.Errorf("IDs not contiguous: %d then %d", s[i-1].ID, s[i].ID)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Add(QueryLogEntry{Statement: "x"})
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone
	select {
	case err := <-snapErr:
		t.Fatal(err)
	default:
	}
	final := l.Snapshot()
	if len(final) != cap {
		t.Fatalf("final snapshot len = %d, want %d", len(final), cap)
	}
	if want := int64(writers*perWriter - 1); final[len(final)-1].ID != want {
		t.Errorf("last ID = %d, want %d", final[len(final)-1].ID, want)
	}
}

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"StatementsOK":   "statements_ok",
		"WalDurableLsn":  "wal_durable_lsn",
		"PeakQueryBytes": "peak_query_bytes",
		"ExecNanosTotal": "exec_nanos_total",
		"ConnsActive":    "conns_active",
		"Checkpoints":    "checkpoints",
	} {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}
