package telemetry

import "testing"

// TestSnapshotNames pins the metric naming: every counter that existed
// before the reflection-based snapshot must keep its exact spelling (the
// system.metrics virtual table is queried by name), and the new WAL and
// replication counters must be present.
func TestSnapshotNames(t *testing.T) {
	m := &Metrics{}
	got := map[string]bool{}
	var order []string
	for _, c := range m.Snapshot() {
		if got[c.Name] {
			t.Fatalf("duplicate metric name %q", c.Name)
		}
		got[c.Name] = true
		order = append(order, c.Name)
	}
	want := []string{
		// pre-existing names, pinned
		"statements_total", "statements_ok", "statements_error",
		"statements_cancelled", "statements_timeout",
		"rows_returned", "rows_affected", "slow_queries",
		"exec_nanos_total", "peak_query_bytes",
		"conns_opened", "conns_closed", "conns_rejected", "conns_active",
		"wal_appends", "wal_fsyncs", "wal_bytes", "checkpoints",
		"index_scans", "index_rows_read", "analyze_runs",
		// new in this PR
		"wal_durable_lsn", "wal_applied_clock",
		"repl_records_shipped", "repl_bytes_shipped",
		"repl_records_applied", "repl_records_skipped",
		"repl_reconnects", "repl_resyncs", "repl_snapshots_sent",
		"repl_slow_kicks", "repl_replicas_active",
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("metric %q missing from Snapshot (have %v)", name, order)
		}
	}
}

// TestSnapshotReadsValues checks the reflection path actually reads the
// right field for a sample of counters.
func TestSnapshotReadsValues(t *testing.T) {
	m := &Metrics{}
	m.StatementsOK.Store(3)
	m.WalDurableLsn.Store(42)
	m.ReplRecordsApplied.Store(7)
	vals := map[string]int64{}
	for _, c := range m.Snapshot() {
		vals[c.Name] = c.Value
	}
	for name, want := range map[string]int64{
		"statements_ok":        3,
		"wal_durable_lsn":      42,
		"repl_records_applied": 7,
		"statements_error":     0,
	} {
		if vals[name] != want {
			t.Errorf("%s = %d, want %d", name, vals[name], want)
		}
	}
}

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"StatementsOK":   "statements_ok",
		"WalDurableLsn":  "wal_durable_lsn",
		"PeakQueryBytes": "peak_query_bytes",
		"ExecNanosTotal": "exec_nanos_total",
		"ConnsActive":    "conns_active",
		"Checkpoints":    "checkpoints",
	} {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}
