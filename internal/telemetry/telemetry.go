// Package telemetry holds the engine-wide observability state: a ring
// buffer of recently executed statements (surfaced as the virtual table
// system.query_log) and cumulative engine counters (system.metrics).
// Both are safe for concurrent use; metric counters are lock-free so
// readers never stall running queries.
package telemetry

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Statement statuses recorded in the query log.
const (
	StatusOK        = "ok"
	StatusError     = "error"
	StatusCancelled = "cancelled"
	StatusTimeout   = "timeout"
)

// StatusOf classifies a statement outcome: context cancellation and
// deadline expiry are distinguished from ordinary errors.
func StatusOf(err error) string {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, context.DeadlineExceeded):
		return StatusTimeout
	case errors.Is(err, context.Canceled):
		return StatusCancelled
	default:
		return StatusError
	}
}

// QueryLogEntry is one executed statement.
type QueryLogEntry struct {
	ID        int64
	Started   time.Time
	Statement string
	Duration  time.Duration
	Rows      int64
	PeakBytes int64
	Status    string
	Err       string
}

// DefaultQueryLogSize is the query-log ring capacity.
const DefaultQueryLogSize = 512

// QueryLog is a fixed-capacity ring buffer of recent statements.
type QueryLog struct {
	mu      sync.Mutex
	entries []QueryLogEntry
	next    int64 // total entries ever added; also the next ID
	cap     int
}

// NewQueryLog returns a ring holding the most recent capacity entries
// (DefaultQueryLogSize when capacity <= 0).
func NewQueryLog(capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = DefaultQueryLogSize
	}
	return &QueryLog{entries: make([]QueryLogEntry, 0, capacity), cap: capacity}
}

// Add appends an entry, assigning its ID and evicting the oldest entry when
// the ring is full.
func (l *QueryLog) Add(e QueryLogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.ID = l.next
	l.next++
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	copy(l.entries, l.entries[1:])
	l.entries[len(l.entries)-1] = e
}

// Snapshot returns the logged entries, oldest first.
func (l *QueryLog) Snapshot() []QueryLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]QueryLogEntry(nil), l.entries...)
}

// Metrics is the engine-wide cumulative counter set. All fields are
// updated atomically; Snapshot gives a consistent-enough view for
// monitoring (individual counters are exact, cross-counter skew is
// possible by design).
type Metrics struct {
	StatementsTotal     atomic.Int64
	StatementsOK        atomic.Int64
	StatementsError     atomic.Int64
	StatementsCancelled atomic.Int64
	StatementsTimeout   atomic.Int64
	RowsReturned        atomic.Int64
	RowsAffected        atomic.Int64
	SlowQueries         atomic.Int64
	ExecNanosTotal      atomic.Int64
	PeakQueryBytes      atomic.Int64 // max over all statements

	// Network-server connection counters (populated by internal/server;
	// zero when the engine runs embedded).
	ConnsOpened   atomic.Int64
	ConnsClosed   atomic.Int64
	ConnsRejected atomic.Int64 // refused by admission control or drain
	ConnsActive   atomic.Int64 // gauge: currently open connections

	// Durability counters (populated by internal/wal; zero without a data
	// directory). WalFsyncs < WalAppends under concurrency is group commit
	// working: many commits amortized into one disk sync.
	WalAppends  atomic.Int64 // redo records appended
	WalFsyncs   atomic.Int64 // fsync syscalls issued by the group-commit flusher
	WalBytes    atomic.Int64 // bytes written to the redo log
	Checkpoints atomic.Int64 // completed checkpoints

	// Index and statistics counters (populated by internal/engine).
	IndexScans    atomic.Int64 // index-scan operators executed
	IndexRowsRead atomic.Int64 // rows produced by index probes
	AnalyzeRuns   atomic.Int64 // tables analyzed (ANALYZE and checkpoint refresh)
}

// RecordStatement folds one statement outcome into the counters.
func (m *Metrics) RecordStatement(status string, returned, affected int64, d time.Duration, peakBytes int64) {
	m.StatementsTotal.Add(1)
	switch status {
	case StatusOK:
		m.StatementsOK.Add(1)
	case StatusCancelled:
		m.StatementsCancelled.Add(1)
	case StatusTimeout:
		m.StatementsTimeout.Add(1)
	default:
		m.StatementsError.Add(1)
	}
	m.RowsReturned.Add(returned)
	m.RowsAffected.Add(affected)
	m.ExecNanosTotal.Add(d.Nanoseconds())
	for {
		p := m.PeakQueryBytes.Load()
		if peakBytes <= p || m.PeakQueryBytes.CompareAndSwap(p, peakBytes) {
			break
		}
	}
}

// Counter is one named metric value.
type Counter struct {
	Name  string
	Value int64
}

// Snapshot reads every counter in a stable order (the system.metrics row
// order).
func (m *Metrics) Snapshot() []Counter {
	return []Counter{
		{"statements_total", m.StatementsTotal.Load()},
		{"statements_ok", m.StatementsOK.Load()},
		{"statements_error", m.StatementsError.Load()},
		{"statements_cancelled", m.StatementsCancelled.Load()},
		{"statements_timeout", m.StatementsTimeout.Load()},
		{"rows_returned", m.RowsReturned.Load()},
		{"rows_affected", m.RowsAffected.Load()},
		{"slow_queries", m.SlowQueries.Load()},
		{"exec_nanos_total", m.ExecNanosTotal.Load()},
		{"peak_query_bytes", m.PeakQueryBytes.Load()},
		{"conns_opened", m.ConnsOpened.Load()},
		{"conns_closed", m.ConnsClosed.Load()},
		{"conns_rejected", m.ConnsRejected.Load()},
		{"conns_active", m.ConnsActive.Load()},
		{"wal_appends", m.WalAppends.Load()},
		{"wal_fsyncs", m.WalFsyncs.Load()},
		{"wal_bytes", m.WalBytes.Load()},
		{"checkpoints", m.Checkpoints.Load()},
		{"index_scans", m.IndexScans.Load()},
		{"index_rows_read", m.IndexRowsRead.Load()},
		{"analyze_runs", m.AnalyzeRuns.Load()},
	}
}
