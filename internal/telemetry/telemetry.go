// Package telemetry holds the engine-wide observability state: a ring
// buffer of recently executed statements (surfaced as the virtual table
// system.query_log) and cumulative engine counters (system.metrics).
// Both are safe for concurrent use; metric counters are lock-free so
// readers never stall running queries.
package telemetry

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"time"
)

// Statement statuses recorded in the query log.
const (
	StatusOK        = "ok"
	StatusError     = "error"
	StatusCancelled = "cancelled"
	StatusTimeout   = "timeout"
)

// StatusOf classifies a statement outcome: context cancellation and
// deadline expiry are distinguished from ordinary errors.
func StatusOf(err error) string {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, context.DeadlineExceeded):
		return StatusTimeout
	case errors.Is(err, context.Canceled):
		return StatusCancelled
	default:
		return StatusError
	}
}

// QueryLogEntry is one executed statement.
type QueryLogEntry struct {
	ID        int64
	Started   time.Time
	Statement string
	TraceID   string // request trace ID ("" when the caller supplied none)
	Duration  time.Duration
	Rows      int64
	PeakBytes int64
	Status    string
	Err       string
}

// DefaultQueryLogSize is the query-log ring capacity.
const DefaultQueryLogSize = 512

// QueryLog is a fixed-capacity ring buffer of recent statements.
type QueryLog struct {
	mu      sync.Mutex
	entries []QueryLogEntry
	next    int64 // total entries ever added; also the next ID
	cap     int
}

// NewQueryLog returns a ring holding the most recent capacity entries
// (DefaultQueryLogSize when capacity <= 0).
func NewQueryLog(capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = DefaultQueryLogSize
	}
	return &QueryLog{entries: make([]QueryLogEntry, 0, capacity), cap: capacity}
}

// Add appends an entry, assigning its ID and evicting the oldest entry when
// the ring is full.
func (l *QueryLog) Add(e QueryLogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.ID = l.next
	l.next++
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	copy(l.entries, l.entries[1:])
	l.entries[len(l.entries)-1] = e
}

// Snapshot returns the logged entries, oldest first.
func (l *QueryLog) Snapshot() []QueryLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]QueryLogEntry(nil), l.entries...)
}

// Metrics is the engine-wide cumulative counter set. All fields are
// updated atomically; Snapshot gives a consistent-enough view for
// monitoring (individual counters are exact, cross-counter skew is
// possible by design).
type Metrics struct {
	StatementsTotal     atomic.Int64
	StatementsOK        atomic.Int64
	StatementsError     atomic.Int64
	StatementsCancelled atomic.Int64
	StatementsTimeout   atomic.Int64
	RowsReturned        atomic.Int64
	RowsAffected        atomic.Int64
	SlowQueries         atomic.Int64
	ExecNanosTotal      atomic.Int64
	PeakQueryBytes      atomic.Int64 // max over all statements

	// Activity gauges: statements currently executing and sessions currently
	// open (a load balancer's view of engine pressure, vs the cumulative
	// statements_total/conns_* counters above).
	QueriesActive  atomic.Int64
	SessionsActive atomic.Int64

	// Network-server connection counters (populated by internal/server;
	// zero when the engine runs embedded).
	ConnsOpened   atomic.Int64
	ConnsClosed   atomic.Int64
	ConnsRejected atomic.Int64 // refused by admission control or drain
	ConnsActive   atomic.Int64 // gauge: currently open connections

	// Durability counters (populated by internal/wal; zero without a data
	// directory). WalFsyncs < WalAppends under concurrency is group commit
	// working: many commits amortized into one disk sync.
	WalAppends  atomic.Int64 // redo records appended
	WalFsyncs   atomic.Int64 // fsync syscalls issued by the group-commit flusher
	WalBytes    atomic.Int64 // bytes written to the redo log
	Checkpoints atomic.Int64 // completed checkpoints

	// Index and statistics counters (populated by internal/engine).
	IndexScans    atomic.Int64 // index-scan operators executed
	IndexRowsRead atomic.Int64 // rows produced by index probes
	AnalyzeRuns   atomic.Int64 // tables analyzed (ANALYZE and checkpoint refresh)

	// Plan-cache counters (populated by internal/engine). A hit means the
	// statement skipped lex/parse/plan entirely; an invalidation means a
	// cached plan was dropped because the catalog or statistics changed
	// under it.
	PlanCacheHits          atomic.Int64
	PlanCacheMisses        atomic.Int64
	PlanCacheInvalidations atomic.Int64

	// WAL position gauges. WalDurableLsn is the record LSN the group-commit
	// flusher has confirmed on disk this process lifetime; WalAppliedClock is
	// the commit clock of the last replicated record a replica applied (zero
	// on a primary or standalone engine).
	WalDurableLsn   atomic.Int64
	WalAppliedClock atomic.Int64

	// Replication counters (populated by internal/repl; zero otherwise).
	ReplRecordsShipped atomic.Int64 // redo records sent to replicas
	ReplBytesShipped   atomic.Int64 // stream payload bytes sent to replicas
	ReplRecordsApplied atomic.Int64 // redo records applied by this replica
	ReplRecordsSkipped atomic.Int64 // already-applied records skipped on resume overlap
	ReplReconnects     atomic.Int64 // replica reconnect attempts after a broken stream
	ReplResyncs        atomic.Int64 // full-snapshot resyncs this replica performed
	ReplSnapshotsSent  atomic.Int64 // full-snapshot resyncs served by this primary
	ReplSlowKicks      atomic.Int64 // replicas disconnected for blocking the shipper
	ReplReplicasActive atomic.Int64 // gauge: replication streams currently connected

	// Cluster-router counters (populated by internal/cluster's Router; zero
	// on a plain server).
	RouterReadsRouted     atomic.Int64 // read requests forwarded to a backend
	RouterWritesRouted    atomic.Int64 // write requests forwarded to the primary
	RouterReadRetries     atomic.Int64 // reads transparently retried on another backend
	RouterWritesRefused   atomic.Int64 // writes refused because no primary was reachable
	RouterFailovers       atomic.Int64 // automatic promotions this router performed
	RouterBackendsHealthy atomic.Int64 // gauge: backends currently passing health checks

	// hist is the latency/size histogram set, lazily initialized so the
	// zero Metrics keeps working. Not an atomic.Int64, so the reflection
	// snapshot below skips it.
	hist atomic.Pointer[Histograms]
}

// Hist returns the histogram set, creating it on first use. Safe for
// concurrent callers; the CAS loser adopts the winner's set so no recorded
// value is ever split across two sets.
func (m *Metrics) Hist() *Histograms {
	if h := m.hist.Load(); h != nil {
		return h
	}
	h := &Histograms{}
	if m.hist.CompareAndSwap(nil, h) {
		return h
	}
	return m.hist.Load()
}

// SetHist replaces the histogram set (the overhead smoke installs a
// disabled set as its baseline).
func (m *Metrics) SetHist(h *Histograms) { m.hist.Store(h) }

// RecordStatement folds one statement outcome into the counters.
func (m *Metrics) RecordStatement(status string, returned, affected int64, d time.Duration, peakBytes int64) {
	m.StatementsTotal.Add(1)
	switch status {
	case StatusOK:
		m.StatementsOK.Add(1)
	case StatusCancelled:
		m.StatementsCancelled.Add(1)
	case StatusTimeout:
		m.StatementsTimeout.Add(1)
	default:
		m.StatementsError.Add(1)
	}
	m.RowsReturned.Add(returned)
	m.RowsAffected.Add(affected)
	m.ExecNanosTotal.Add(d.Nanoseconds())
	for {
		p := m.PeakQueryBytes.Load()
		if peakBytes <= p || m.PeakQueryBytes.CompareAndSwap(p, peakBytes) {
			break
		}
	}
}

// Counter is one named metric value.
type Counter struct {
	Name  string
	Value int64
}

// counterFields maps each atomic.Int64 field of Metrics, in declaration
// order, to its snake_case metric name. It is computed once: adding a field
// to Metrics is all it takes for the counter to appear in system.metrics —
// no per-call-site registration.
var counterFields = func() []counterField {
	t := reflect.TypeOf(Metrics{})
	atomicInt64 := reflect.TypeOf(atomic.Int64{})
	var out []counterField
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type != atomicInt64 {
			continue
		}
		out = append(out, counterField{name: snakeCase(f.Name), index: i})
	}
	return out
}()

type counterField struct {
	name  string
	index int
}

// snakeCase converts a Go field name to its metric spelling, keeping runs
// of capitals together: StatementsOK -> statements_ok, WalDurableLsn ->
// wal_durable_lsn.
func snakeCase(s string) string {
	out := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			// Start of a word unless the previous rune was also a capital
			// (an acronym run stays one word).
			if i > 0 && !(s[i-1] >= 'A' && s[i-1] <= 'Z') {
				out = append(out, '_')
			}
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}

// Snapshot reads every counter in a stable order (the system.metrics row
// order, which is the Metrics field declaration order).
func (m *Metrics) Snapshot() []Counter {
	v := reflect.ValueOf(m).Elem()
	out := make([]Counter, len(counterFields))
	for i, cf := range counterFields {
		out[i] = Counter{
			Name:  cf.name,
			Value: v.Field(cf.index).Addr().Interface().(*atomic.Int64).Load(),
		}
	}
	return out
}
