package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the power-of-two bucket layout: value
// v lands in the bucket whose range [2^(i-1), 2^i) contains it, with
// non-positive values in bucket 0.
func TestHistogramBucketBoundaries(t *testing.T) {
	for _, tc := range []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{1 << 40, 41},
		{1<<62 + 1, 63},
	} {
		var h Histogram
		h.Record(tc.v)
		s := h.Snapshot()
		for i, c := range s.Counts {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("Record(%d): bucket %d count = %d, want %d", tc.v, i, c, want)
			}
		}
	}
}

// TestBucketUpper checks the inclusive upper bounds used by quantile
// estimation and the Prometheus le labels.
func TestBucketUpper(t *testing.T) {
	for i, want := range map[int]int64{
		-1: 0, 0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 63: 1<<63 - 1, 64: 1<<63 - 1,
	} {
		if got := BucketUpper(i); got != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramQuantileMean(t *testing.T) {
	var h Histogram
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty p50 = %d, want 0", q)
	}
	if m := empty.Mean(); m != 0 {
		t.Errorf("empty mean = %v, want 0", m)
	}

	// 90 values of 100 (bucket 7, upper 127) and 10 of 5000 (bucket 13,
	// upper 8191): p50 resolves to the low bucket, p99 to the high one.
	for i := 0; i < 90; i++ {
		h.Record(100)
	}
	for i := 0; i < 10; i++ {
		h.Record(5000)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Sum != 90*100+10*5000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if got := s.Quantile(0.50); got != 127 {
		t.Errorf("p50 = %d, want 127", got)
	}
	if got := s.Quantile(0.99); got != 8191 {
		t.Errorf("p99 = %d, want 8191", got)
	}
	if got := s.Quantile(1.0); got != 8191 {
		t.Errorf("p100 = %d, want 8191", got)
	}
	if got := s.Mean(); got != 590 {
		t.Errorf("mean = %v, want 590", got)
	}
	// Out-of-range q values clamp rather than panic.
	if got := s.Quantile(-1); got != 127 {
		t.Errorf("Quantile(-1) = %d, want 127 (clamped to lowest rank)", got)
	}
	if got := s.Quantile(2); got != 8191 {
		t.Errorf("Quantile(2) = %d, want 8191 (clamped to 1)", got)
	}
}

// TestHistogramConcurrentSnapshotConsistency records from many goroutines
// while snapshots are taken concurrently, asserting the documented
// invariant: Count always equals the sum of Counts, and cumulative bucket
// counts never decrease across successive snapshots of the same bucket.
func TestHistogramConcurrentSnapshotConsistency(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 5000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var lastCount int64
		for {
			s := h.Snapshot()
			var sum int64
			for _, c := range s.Counts {
				sum += c
			}
			if sum != s.Count {
				t.Errorf("snapshot Count %d != bucket sum %d", s.Count, sum)
				return
			}
			if s.Count < lastCount {
				t.Errorf("snapshot Count went backwards: %d then %d", lastCount, s.Count)
				return
			}
			lastCount = s.Count
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < perWriter; i++ {
				h.Record(seed*1000 + i)
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if s := h.Snapshot(); s.Count != writers*perWriter {
		t.Errorf("final count = %d, want %d", s.Count, writers*perWriter)
	}
}

// TestHistogramsNilAndDisabled: every Record* helper must be a no-op — not
// a panic — on a nil or disabled set, so call sites never branch.
func TestHistogramsNilAndDisabled(t *testing.T) {
	var nilH *Histograms
	nilH.RecordStmt(KindSelect, 1)
	nilH.RecordStages(1, 2)
	nilH.RecordCommitWait(3)
	nilH.RecordWalFsync(4, 5)
	nilH.RecordReplApplyLag(6)

	d := NewDisabledHistograms()
	d.RecordStmt(KindDML, 1)
	d.RecordStages(1, 2)
	d.RecordCommitWait(3)
	d.RecordWalFsync(4, 5)
	d.RecordReplApplyLag(6)
	for _, def := range d.Defs() {
		if s := def.H.Snapshot(); s.Count != 0 {
			t.Errorf("disabled histogram %s recorded %d values", def.Row, s.Count)
		}
	}
}

// TestHistogramsRouting checks each Record* helper lands in the intended
// histogram and nowhere else.
func TestHistogramsRouting(t *testing.T) {
	h := &Histograms{}
	h.RecordStmt(KindSelect, 10)
	h.RecordStmt(KindDML, 10)
	h.RecordStmt(KindDDL, 10)
	h.RecordStmt("mystery", 10) // unknown kinds fold into other
	h.RecordStages(5, 7)
	h.RecordCommitWait(9)
	h.RecordWalFsync(11, 3)
	h.RecordReplApplyLag(2)
	want := map[string]int64{
		"stmt_latency_select_ns":    1,
		"stmt_latency_dml_ns":       1,
		"stmt_latency_ddl_ns":       1,
		"stmt_latency_other_ns":     1,
		"stmt_stage_parse_plan_ns":  1,
		"stmt_stage_exec_ns":        1,
		"stmt_stage_commit_wait_ns": 1,
		"wal_fsync_ns":              1,
		"wal_group_commit_records":  1,
		"repl_apply_lag_records":    1,
	}
	for _, d := range h.Defs() {
		if got := d.H.Snapshot().Count; got != want[d.Row] {
			t.Errorf("%s count = %d, want %d", d.Row, got, want[d.Row])
		}
	}
}

// TestHistogramDefs pins the export metadata: stable row/family naming,
// uniqueness, and which histograms are nanosecond-valued.
func TestHistogramDefs(t *testing.T) {
	h := &Histograms{}
	defs := h.Defs()
	if len(defs) != 10 {
		t.Fatalf("Defs() returned %d histograms, want 10", len(defs))
	}
	rows := map[string]bool{}
	for _, d := range defs {
		if rows[d.Row] {
			t.Errorf("duplicate row name %q", d.Row)
		}
		rows[d.Row] = true
		if d.H == nil {
			t.Errorf("%s has nil histogram", d.Row)
		}
		if strings.HasSuffix(d.Row, "_ns") != d.Seconds {
			t.Errorf("%s: Seconds=%v disagrees with the _ns suffix convention", d.Row, d.Seconds)
		}
		if (d.LabelKey == "") != (d.LabelVal == "") {
			t.Errorf("%s: LabelKey %q and LabelVal %q must be set together", d.Row, d.LabelKey, d.LabelVal)
		}
	}
}

// TestHistogramSummaries checks the system.metrics row rendering: four rows
// per histogram with quantiles consistent with the recorded data, and a nil
// set rendering nothing.
func TestHistogramSummaries(t *testing.T) {
	var nilH *Histograms
	if rows := nilH.HistogramSummaries(); rows != nil {
		t.Errorf("nil HistogramSummaries = %v, want nil", rows)
	}

	h := &Histograms{}
	for i := 0; i < 100; i++ {
		h.RecordStmt(KindSelect, 1000)
	}
	rows := h.HistogramSummaries()
	if want := len(h.Defs()) * 4; len(rows) != want {
		t.Fatalf("summary rows = %d, want %d", len(rows), want)
	}
	vals := map[string]int64{}
	for _, r := range rows {
		vals[r.Name] = r.Value
	}
	if vals["stmt_latency_select_ns_count"] != 100 {
		t.Errorf("select count = %d, want 100", vals["stmt_latency_select_ns_count"])
	}
	if p50 := vals["stmt_latency_select_ns_p50"]; p50 != 1023 {
		t.Errorf("select p50 = %d, want 1023 (bucket upper bound of 1000)", p50)
	}
	if vals["wal_fsync_ns_count"] != 0 {
		t.Errorf("untouched histogram count = %d, want 0", vals["wal_fsync_ns_count"])
	}
}

// BenchmarkHistogramRecord is the hot-path cost every statement pays:
// bucket index + two atomic adds. See BENCH_obs.json for the baseline.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

// BenchmarkHistogramRecordParallel measures contention across goroutines
// sharing one histogram (the real shape: every session records into the
// same set).
func BenchmarkHistogramRecordParallel(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Record(i)
		}
	})
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	var h Histogram
	for i := int64(0); i < 10_000; i++ {
		h.Record(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Snapshot()
	}
}
