package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/repl"
	"lambdadb/internal/server"
	"lambdadb/internal/server/client"
	"lambdadb/internal/telemetry"
)

// testNode is one in-process cluster member: engine + role machinery +
// wire server.
type testNode struct {
	t    *testing.T
	dir  string
	db   *engine.DB
	node *Node
	srv  *server.Server
	addr string
}

func fastNodeConfig(syncReplicas int) NodeConfig {
	return NodeConfig{
		Replica: repl.ReplicaConfig{
			DialTimeout: 2 * time.Second,
			ReadTimeout: 3 * time.Second,
			AckEvery:    20 * time.Millisecond,
			BaseBackoff: 50 * time.Millisecond,
			MaxBackoff:  500 * time.Millisecond,
		},
		Primary: repl.PrimaryConfig{
			HeartbeatEvery: 100 * time.Millisecond,
			SyncReplicas:   syncReplicas,
			SyncTimeout:    2 * time.Second,
		},
	}
}

// startNode opens (or reopens) a node in dir and serves it on addr
// (":127.0.0.1:0" semantics via addr == "" for a fresh port).
func startNode(t *testing.T, dir, addr, replicaOf string, syncReplicas int) *testNode {
	t.Helper()
	opts := []engine.Option{}
	if replicaOf != "" {
		opts = append(opts, engine.WithReadReplica(replicaOf))
	}
	db, err := engine.OpenDir(dir, opts...)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	node, err := NewNode(db, replicaOf, fastNodeConfig(syncReplicas))
	if err != nil {
		t.Fatalf("new node: %v", err)
	}
	n := &testNode{t: t, dir: dir, db: db, node: node}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	n.serve(addr)
	return n
}

// serve (re)starts the wire server for an already-open node.
func (n *testNode) serve(addr string) {
	n.t.Helper()
	srv := server.New(n.db, server.Config{
		Addr:        addr,
		DrainGrace:  50 * time.Millisecond,
		ReplHandler: n.node,
	})
	if err := srv.Listen(); err != nil {
		n.t.Fatalf("listen %s: %v", addr, err)
	}
	n.srv = srv
	n.addr = srv.Addr().String()
	go srv.Serve() //nolint:errcheck
}

// stopServer hard-stops the wire server (listener and every connection),
// leaving the engine and role machinery running — the in-process stand-in
// for a network partition.
func (n *testNode) stopServer() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := n.srv.Shutdown(ctx); err != nil {
		n.t.Logf("shutdown %s: %v", n.addr, err)
	}
}

func (n *testNode) close() {
	n.stopServer()
	n.node.Close()
	n.db.Close()
}

// startCluster brings up one primary and two replicas with semi-sync
// (SyncReplicas=1) plus a router over all three.
func startCluster(t *testing.T) (nodes []*testNode, rt *Router, m *telemetry.Metrics) {
	t.Helper()
	n1 := startNode(t, t.TempDir(), "", "", 1)
	n2 := startNode(t, t.TempDir(), "", n1.addr, 0)
	n3 := startNode(t, t.TempDir(), "", n1.addr, 0)
	nodes = []*testNode{n1, n2, n3}

	m = &telemetry.Metrics{}
	rt, err := NewRouter(RouterConfig{
		Listen:     "127.0.0.1:0",
		Nodes:      []string{n1.addr, n2.addr, n3.addr},
		ProbeEvery: 50 * time.Millisecond,
		FailAfter:  500 * time.Millisecond,
		WriteWait:  8 * time.Second,
		Metrics:    m,
	})
	if err != nil {
		t.Fatalf("new router: %v", err)
	}
	if err := rt.Listen(); err != nil {
		t.Fatalf("router listen: %v", err)
	}
	go rt.Serve() //nolint:errcheck
	t.Cleanup(func() {
		rt.Close()
		for _, n := range nodes {
			n.close()
		}
	})
	return nodes, rt, m
}

// execOn runs one statement through a fresh router connection.
func execOn(t *testing.T, addr, stmt string) (*client.Result, error) {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Exec(stmt)
}

func waitFor(t *testing.T, d time.Duration, what string, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if fn() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

func TestRouterRoutesAndReadYourWrites(t *testing.T) {
	_, rt, m := startCluster(t)

	// The router needs a probe round to find the primary; the write path
	// waits for it internally, so the first statement just works.
	if _, err := execOn(t, rt.Addr(), "CREATE TABLE kv (k INT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}

	c, err := client.Dial(rt.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		// Read-your-writes on the same session: the immediately following
		// read must see every row written so far, no matter which replica
		// serves it.
		res, err := c.Exec("SELECT COUNT(*) FROM kv")
		if err != nil {
			t.Fatalf("count after %d: %v", i, err)
		}
		if got := res.Rows[0][0].AsInt(); got != int64(i+1) {
			t.Fatalf("after insert %d: count = %d, want %d", i, got, i+1)
		}
	}

	if m.RouterWritesRouted.Load() == 0 || m.RouterReadsRouted.Load() == 0 {
		t.Fatalf("router counters not populated: writes=%d reads=%d",
			m.RouterWritesRouted.Load(), m.RouterReadsRouted.Load())
	}
}

func TestRouterFailoverFencingAndRejoin(t *testing.T) {
	nodes, rt, m := startCluster(t)
	n1 := nodes[0]

	if _, err := execOn(t, rt.Addr(), "CREATE TABLE kv (k INT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	acked := 0
	for i := 0; i < 20; i++ {
		if _, err := execOn(t, rt.Addr(), fmt.Sprintf("INSERT INTO kv VALUES (%d, 1)", i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		acked++
	}

	// Kill the primary's server. Reads must keep working throughout (the
	// replicas are healthy), and the router must promote within its
	// detection window and let writes resume.
	n1.stopServer()

	waitFor(t, 15*time.Second, "a write to succeed after failover", func() bool {
		_, err := execOn(t, rt.Addr(), fmt.Sprintf("INSERT INTO kv VALUES (%d, 2)", acked))
		if err == nil {
			acked++
			return true
		}
		return false
	})
	if m.RouterFailovers.Load() != 1 {
		t.Fatalf("router_failovers = %d, want 1", m.RouterFailovers.Load())
	}

	// Reads served continuously, and every acked write survived.
	res, err := execOn(t, rt.Addr(), "SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatalf("count after failover: %v", err)
	}
	if got := res.Rows[0][0].AsInt(); got != int64(acked) {
		t.Fatalf("acked-commit loss: count = %d, want %d", got, acked)
	}

	// The new regime runs under a bumped, durably fenced epoch.
	res, err = execOn(t, rt.Addr(), "SELECT MAX(epoch) FROM system.replication")
	if err != nil {
		t.Fatalf("epoch query: %v", err)
	}
	if got := res.Rows[0][0].AsInt(); got < 1 {
		t.Fatalf("epoch after failover = %d, want >= 1", got)
	}

	// Heal the partition: the old primary's server comes back, engine
	// state intact, still believing it leads. Direct writes to it must
	// never be acked: either it is already fenced (read_only), or its
	// semi-sync commit cannot find a replica to confirm (its replicas all
	// follow the new primary now) and errors out unconfirmed.
	n1.serve(n1.addr)
	if _, err := execOn(t, n1.addr, "INSERT INTO kv VALUES (999, 3)"); err == nil {
		t.Fatalf("stale primary acked a write after a newer epoch was fenced")
	}

	// The router re-points the rejoiner at the new primary; once demoted it
	// refuses writes with the machine-readable read_only code naming its
	// new primary.
	waitFor(t, 15*time.Second, "the old primary to be demoted to replica", func() bool {
		_, err := execOn(t, n1.addr, "INSERT INTO kv VALUES (999, 4)")
		var se *client.ServerError
		if errors.As(err, &se) {
			return se.Code == "read_only"
		}
		return false
	})

	// And the rejoined replica converges on the full data set.
	waitFor(t, 15*time.Second, "the rejoined replica to catch up", func() bool {
		res, err := execOn(t, n1.addr, "SELECT COUNT(*) FROM kv")
		return err == nil && res.Rows[0][0].AsInt() == int64(acked)
	})
}
