// Package cluster turns a set of lambdaserver processes into one
// epoch-fenced, automatically-failing-over database: a Node wraps the
// engine's replication machinery behind role transitions (PROMOTE /
// FOLLOW), and a Router funnels client writes to the current primary while
// spreading reads across lag-healthy replicas, promoting the most
// caught-up replica when the primary dies.
//
// The fencing invariant the package maintains: at most one node accepts
// writes per cluster epoch. The epoch is a monotonic counter persisted
// through the WAL (wal.Manager.SetEpoch); promotion durably bumps it
// before the node becomes writable, every replication control frame
// carries it, and both ends of a stream refuse the other side's stale
// epoch. A partitioned ex-primary therefore fences itself the moment it
// hears from any node of the new regime — and until then, nothing
// replicates from it, so its unreplicated writes cannot leak.
package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"lambdadb/internal/engine"
	"lambdadb/internal/repl"
	"lambdadb/internal/server"
	"lambdadb/internal/server/wire"
	"lambdadb/internal/wal"
)

// NodeConfig tunes one cluster member.
type NodeConfig struct {
	// Replica tunes the following side (used whenever the node follows).
	Replica repl.ReplicaConfig
	// Primary tunes the shipping side (used whenever the node leads).
	// OnStaleEpoch is overwritten by the Node: self-demotion is its job.
	Primary repl.PrimaryConfig
	// Logger receives role-transition logs. Nil discards them.
	Logger *slog.Logger
}

// Node is one cluster member: an engine plus the replication role it is
// currently playing. It implements engine.ClusterControl (PROMOTE/FOLLOW
// statements land here) and server.ReplicationHandler (replica streams are
// forwarded to the current primary machinery, or refused while following).
type Node struct {
	db  *engine.DB
	mgr *wal.Manager
	cfg NodeConfig
	log *slog.Logger

	mu      sync.Mutex
	primary *repl.Primary // non-nil while leading
	replica *repl.Replica // non-nil while following
	closed  bool
}

// NewNode wraps db — which must have been opened with a data directory —
// and starts it in the role it was configured for: following primaryAddr
// when non-empty (the -replica-of flag), else leading.
func NewNode(db *engine.DB, primaryAddr string, cfg NodeConfig) (*Node, error) {
	mgr := db.WALManager()
	if mgr == nil {
		return nil, fmt.Errorf("cluster: a node requires a database opened with a data directory")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	n := &Node{db: db, mgr: mgr, cfg: cfg, log: cfg.Logger}
	db.SetClusterControl(n)
	if primaryAddr == "" {
		p, err := n.newPrimary()
		if err != nil {
			return nil, err
		}
		n.primary = p
		return n, nil
	}
	r, err := repl.StartReplica(db, primaryAddr, cfg.Replica)
	if err != nil {
		return nil, err
	}
	n.replica = r
	return n, nil
}

// newPrimary builds the shipping machinery with the Node's self-demotion
// hook installed.
func (n *Node) newPrimary() (*repl.Primary, error) {
	cfg := n.cfg.Primary
	cfg.OnStaleEpoch = n.staleEpoch
	return repl.NewPrimary(n.db, cfg)
}

// Role reports "primary" or "replica" plus the current fencing epoch.
func (n *Node) Role() (string, uint64) {
	if n.db.Writable() {
		return "primary", n.mgr.Epoch()
	}
	return "replica", n.mgr.Epoch()
}

// Promote implements engine.ClusterControl: detach from the old primary,
// durably bump the cluster epoch, and become the writable primary. The
// order is load-bearing — the epoch record must be durable before the
// first write is accepted, so no commit can ever exist under an epoch that
// was not fenced first. Promoting a node that already leads just returns
// the current epoch (the router retries promotion on failover; it must be
// idempotent).
func (n *Node) Promote(ctx context.Context) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, fmt.Errorf("cluster: node is closed")
	}
	if n.primary != nil {
		return n.mgr.Epoch(), nil
	}
	if n.replica != nil {
		n.replica.Close()
		n.replica = nil
	}
	n.mgr.PrimaryMode()
	epoch := n.mgr.Epoch() + 1
	if err := n.mgr.SetEpoch(epoch); err != nil {
		return 0, fmt.Errorf("cluster: promote: persist epoch %d: %w", epoch, err)
	}
	p, err := n.newPrimary()
	if err != nil {
		return 0, err
	}
	n.primary = p
	n.db.BecomePrimary()
	n.log.Info("promoted to primary", "epoch", epoch)
	return epoch, nil
}

// Follow implements engine.ClusterControl: fence the node read-only, stop
// any leading machinery, and stream from addr. Re-pointing an existing
// replica at a new primary restarts the stream (its durable position is
// preserved; divergence or lag is handled by the stream's usual resync
// path).
func (n *Node) Follow(ctx context.Context, addr string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("cluster: node is closed")
	}
	// Fence before anything else: from here on no new write is accepted,
	// even while the old machinery winds down.
	n.db.BecomeReplica(addr)
	if n.primary != nil {
		n.primary.Stop()
		n.primary = nil
	}
	if n.replica != nil {
		n.replica.Close()
		n.replica = nil
	}
	r, err := repl.StartReplica(n.db, addr, n.cfg.Replica)
	if err != nil {
		return err
	}
	n.replica = r
	n.log.Info("following primary", "primary", addr, "epoch", n.mgr.Epoch())
	return nil
}

// staleEpoch is the Primary's OnStaleEpoch hook: a replica reported an
// epoch newer than ours, so another node was promoted and this one must
// stop writing immediately. It fences the engine and tears the shipping
// machinery down; it does not start following anyone — the router (or an
// operator) names our new primary with FOLLOW once one is known.
func (n *Node) staleEpoch(remoteEpoch uint64, peer string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.primary == nil {
		return // already demoted
	}
	n.log.Warn("fencing: peer reported a newer cluster epoch",
		"peer", peer, "remote_epoch", remoteEpoch, "local_epoch", n.mgr.Epoch())
	n.db.BecomeReplica("")
	n.mgr.AdoptEpoch(remoteEpoch)
	p := n.primary
	n.primary = nil
	// Stop closes replica sockets — possibly including the one whose
	// goroutine invoked this hook; Stop never joins those goroutines, so
	// calling it inline cannot deadlock.
	p.Stop()
}

// ServeReplication implements server.ReplicationHandler by forwarding to
// the current leading machinery. While following (or mid-demotion) the
// stream is refused: replicas must chain from the real primary.
func (n *Node) ServeReplication(ctx context.Context, nc net.Conn, br *bufio.Reader, start []byte) {
	n.mu.Lock()
	p := n.primary
	n.mu.Unlock()
	if p == nil {
		_ = wire.WriteFrame(nc, wire.Error, []byte("repl: this node is not a primary"))
		return
	}
	p.ServeReplication(ctx, nc, br, start)
}

// Close stops whatever role machinery is running. The engine itself is the
// caller's to close.
func (n *Node) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	if n.primary != nil {
		n.primary.Stop()
		n.primary = nil
	}
	if n.replica != nil {
		n.replica.Close()
		n.replica = nil
	}
}

// compile-time interface checks
var (
	_ engine.ClusterControl     = (*Node)(nil)
	_ server.ReplicationHandler = (*Node)(nil)
)
