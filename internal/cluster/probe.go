package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"lambdadb/internal/server/client"
	"lambdadb/internal/server/wire"
	"lambdadb/internal/telemetry"
)

// probeSQL is what the failure detector asks every node. One row per
// replication link; a node's own role and epoch are on every row.
const probeSQL = "SELECT role, peer, epoch, wal_seg, wal_off, applied_clock, primary_clock, lag FROM system.replication"

// backend is the router's view of one cluster node.
type backend struct {
	addr     string
	readyURL string

	mu      sync.Mutex
	probe   *client.Conn // dedicated control connection (probe/PROMOTE/FOLLOW)
	lastOK  time.Time    // last successful probe
	ready   bool         // /readyz verdict (true when no URL is configured)
	role    string       // "primary" or "replica" per the last probe
	peer    string       // the primary a replica reports following
	epoch   uint64
	walSeg  uint64
	walOff  int64
	applied uint64 // commit clock applied locally
	lag     int64  // commit-clock records behind the primary
}

// healthyWithin reports whether the node answered a probe recently enough
// and (when an admin URL is configured) passes /readyz.
func (b *backend) healthyWithin(window time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ready && !b.lastOK.IsZero() && time.Since(b.lastOK) <= window
}

// control returns the node's control connection, dialing if needed.
func (b *backend) control(timeout time.Duration) (*client.Conn, error) {
	b.mu.Lock()
	c := b.probe
	b.mu.Unlock()
	if c != nil {
		return c, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	c, err := client.DialRetry(ctx, b.addr, client.RetryConfig{MaxAttempts: 1})
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	if b.probe != nil {
		// Lost a dial race; keep the winner.
		loser := c
		c = b.probe
		defer loser.Close()
	} else {
		b.probe = c
	}
	b.mu.Unlock()
	return c, nil
}

func (b *backend) dropControl() {
	b.mu.Lock()
	c := b.probe
	b.probe = nil
	b.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// probeOnce health-checks the node over the wire (and /readyz when
// configured) and refreshes its role/epoch/lag view.
func (rt *Router) probeOnce(b *backend) {
	c, err := b.control(rt.cfg.DialTimeout)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.DialTimeout)
	res, err := c.ExecContext(ctx, probeSQL)
	cancel()
	if err != nil {
		b.dropControl()
		return
	}
	ready := true
	if b.readyURL != "" {
		ready = probeReady(b.readyURL, rt.cfg.DialTimeout)
	}
	col := map[string]int{}
	for i, name := range res.Columns {
		col[name] = i
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastOK = time.Now()
	b.ready = ready
	for _, row := range res.Rows {
		b.role = row[col["role"]].S
		b.peer = row[col["peer"]].S
		b.epoch = uint64(row[col["epoch"]].AsInt())
		b.walSeg = uint64(row[col["wal_seg"]].AsInt())
		b.walOff = row[col["wal_off"]].AsInt()
		b.applied = uint64(row[col["applied_clock"]].AsInt())
		b.lag = row[col["lag"]].AsInt()
	}
}

// probeReady asks the node's admin endpoint whether it would serve.
func probeReady(url string, timeout time.Duration) bool {
	hc := http.Client{Timeout: timeout}
	resp, err := hc.Get(url)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// supervise runs the failure detector: one probe loop per node plus an
// evaluation loop that elects or confirms the primary, fails over when it
// dies, and re-points stragglers. Each node is probed on its own goroutine
// and cadence — a single stalled backend (frozen process, blackholed
// network) must not delay anyone else's health stamps, or the whole
// cluster would look stale and the detector would go blind exactly when it
// is needed.
func (rt *Router) supervise() {
	defer close(rt.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for _, b := range rt.nodes {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			tick := time.NewTicker(rt.cfg.ProbeEvery)
			defer tick.Stop()
			for {
				rt.probeOnce(b)
				select {
				case <-rt.stop:
					return
				case <-tick.C:
				}
			}
		}(b)
	}

	// Until the first probes complete, lastPrimarySeen doubles as a startup
	// grace so the router cannot "fail over" before ever having seen the
	// real primary.
	lastPrimarySeen := time.Now()
	tick := time.NewTicker(rt.cfg.ProbeEvery)
	defer tick.Stop()
	for {
		if rt.evaluate(&lastPrimarySeen) {
			lastPrimarySeen = time.Now()
		}
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
	}
}

// evaluate updates the primary view and performs failover when due. It
// reports whether a healthy primary is currently in view.
func (rt *Router) evaluate(lastPrimarySeen *time.Time) bool {
	window := rt.cfg.FailAfter
	healthy := 0
	var claimant *backend // healthy node claiming "primary", highest epoch
	var claimEpoch uint64
	for _, b := range rt.nodes {
		if !b.healthyWithin(window) {
			continue
		}
		healthy++
		b.mu.Lock()
		role, epoch := b.role, b.epoch
		b.mu.Unlock()
		if role == "primary" && (claimant == nil || epoch > claimEpoch) {
			claimant, claimEpoch = b, epoch
		}
	}
	rt.m.RouterBackendsHealthy.Store(int64(healthy))

	if claimant != nil {
		rt.setPrimary(claimant)
		rt.reconcile(claimant, claimEpoch, window)
		return true
	}

	// No healthy claimant. Fail over once the old primary has been out of
	// view for the full detection window, and only if a replica is healthy
	// enough to take over; otherwise degrade to read-only serving.
	rt.setPrimary(nil)
	if time.Since(*lastPrimarySeen) <= window {
		return false
	}
	best := rt.mostCaughtUp(window)
	if best == nil {
		return false
	}
	rt.failover(best)
	return false
}

// mostCaughtUp picks the healthy replica with the most durable log — the
// one whose promotion loses nothing that was ever acked under semi-sync.
func (rt *Router) mostCaughtUp(window time.Duration) *backend {
	var best *backend
	var bestKey [4]uint64
	for _, b := range rt.nodes {
		if !b.healthyWithin(window) {
			continue
		}
		b.mu.Lock()
		key := [4]uint64{b.epoch, b.walSeg, uint64(b.walOff), b.applied}
		role := b.role
		b.mu.Unlock()
		if role != "replica" {
			continue
		}
		if best == nil || greaterKey(key, bestKey) {
			best, bestKey = b, key
		}
	}
	return best
}

func greaterKey(a, b [4]uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}

// failover promotes b and re-points every other live node at it.
func (rt *Router) failover(b *backend) {
	rt.log.Warn("primary unreachable; promoting most-caught-up replica", "candidate", b.addr)
	c, err := b.control(rt.cfg.DialTimeout)
	if err != nil {
		rt.log.Error("failover: dial candidate", "candidate", b.addr, "err", err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	res, err := c.ExecContext(ctx, "PROMOTE")
	cancel()
	if err != nil {
		b.dropControl()
		rt.log.Error("failover: PROMOTE failed", "candidate", b.addr, "err", err.Error())
		return
	}
	var epoch int64
	if len(res.Rows) > 0 && len(res.Rows[0]) > 0 {
		epoch = res.Rows[0][0].AsInt()
	}
	b.mu.Lock()
	b.role, b.epoch, b.peer = "primary", uint64(epoch), ""
	b.mu.Unlock()
	rt.m.RouterFailovers.Add(1)
	rt.log.Warn("failover: promoted", "primary", b.addr, "epoch", epoch)
	rt.setPrimary(b)
	rt.reconcile(b, uint64(epoch), rt.cfg.FailAfter)
}

// reconcile points every healthy node that is not following the current
// primary — including a returned ex-primary still claiming the role under
// a stale epoch — at it with FOLLOW.
func (rt *Router) reconcile(primary *backend, primaryEpoch uint64, window time.Duration) {
	for _, b := range rt.nodes {
		if b == primary || !b.healthyWithin(window) {
			continue
		}
		b.mu.Lock()
		role, peer, epoch := b.role, b.peer, b.epoch
		b.mu.Unlock()
		if role == "primary" && epoch > primaryEpoch {
			// Never demote a higher epoch: our primary view is the stale
			// one; the next evaluate pass will adopt the newer claimant.
			continue
		}
		if role == "replica" && peer == primary.addr {
			continue // already chained correctly
		}
		c, err := b.control(rt.cfg.DialTimeout)
		if err != nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err = c.ExecContext(ctx, fmt.Sprintf("FOLLOW '%s'", primary.addr))
		cancel()
		if err != nil {
			b.dropControl()
			rt.log.Warn("reconcile: FOLLOW failed", "node", b.addr, "primary", primary.addr, "err", err.Error())
			continue
		}
		b.mu.Lock()
		b.role, b.peer = "replica", primary.addr
		b.mu.Unlock()
		rt.log.Info("reconciled node onto current primary", "node", b.addr, "primary", primary.addr)
	}
}

// setPrimary records the router-wide primary view.
func (rt *Router) setPrimary(b *backend) {
	rt.mu.Lock()
	prev := rt.primary
	rt.primary = b
	rt.mu.Unlock()
	if prev != b && b != nil {
		rt.log.Info("primary view changed", "primary", b.addr)
	}
}

func (rt *Router) currentPrimary() *backend {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.primary
}

// notePrimaryRejected reacts to a write refused as read_only/not_primary:
// the node we routed to is fenced. Clear it from the primary view and, if
// it redirected us to a known node, adopt that immediately instead of
// waiting a probe round.
func (rt *Router) notePrimaryRejected(addr, hint string) {
	rt.mu.Lock()
	if rt.primary != nil && rt.primary.addr == addr {
		rt.primary = nil
	}
	if hint != "" {
		for _, b := range rt.nodes {
			if b.addr == hint {
				rt.primary = b
				break
			}
		}
	}
	rt.mu.Unlock()
	for _, b := range rt.nodes {
		if b.addr == addr {
			b.mu.Lock()
			b.role = "replica"
			b.mu.Unlock()
		}
	}
}

// readCandidates snapshots routing targets for one read: lag-healthy
// replicas chained to the current primary (rotated round-robin), the
// primary, and finally — degraded mode — any other healthy node.
func (rt *Router) readCandidates() (replicas []*backend, primary *backend, fallback []*backend) {
	window := rt.cfg.FailAfter
	primary = rt.currentPrimary()
	if primary != nil && !primary.healthyWithin(window) {
		primary = nil
	}
	for _, b := range rt.nodes {
		if b == primary || !b.healthyWithin(window) {
			continue
		}
		b.mu.Lock()
		role, peer, lag := b.role, b.peer, b.lag
		b.mu.Unlock()
		chained := primary == nil || (role == "replica" && peer == primary.addr)
		lagOK := rt.cfg.ReadyMaxLag <= 0 || lag <= rt.cfg.ReadyMaxLag
		if chained && lagOK && role == "replica" {
			replicas = append(replicas, b)
		} else {
			fallback = append(fallback, b)
		}
	}
	if len(replicas) > 1 {
		rt.mu.Lock()
		rot := rt.rr % len(replicas)
		rt.rr++
		rt.mu.Unlock()
		replicas = append(replicas[rot:], replicas[:rot]...)
	}
	return replicas, primary, fallback
}

// backendConn is one raw per-session connection to a backend: frames are
// relayed without decoding result sets, so the router adds no parsing cost
// on the data path.
type backendConn struct {
	addr string
	nc   net.Conn
	br   *bufio.Reader
}

func dialBackendConn(addr string, timeout time.Duration) (*backendConn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &backendConn{addr: addr, nc: nc, br: bufio.NewReader(nc)}, nil
}

func (b *backendConn) close() { b.nc.Close() }

// roundTrip sends one request frame and reads the single response frame.
// No read deadline: statement runtime belongs to the backend's own
// -stmt-timeout, not the router.
func (b *backendConn) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	if err := wire.WriteFrame(b.nc, typ, payload); err != nil {
		return 0, nil, err
	}
	return wire.ReadFrame(b.br)
}

// queryClock asks the backend (assumed primary) for its current commit
// clock — the read-your-writes barrier for this session.
func (b *backendConn) queryClock() (uint64, error) {
	if err := b.nc.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return 0, err
	}
	defer b.nc.SetDeadline(time.Time{})
	payload := wire.AppendTraced(telemetry.NewTraceID(), []byte("SELECT primary_clock FROM system.replication"))
	typ, resp, err := b.roundTrip(wire.Query, payload)
	if err != nil {
		return 0, err
	}
	if typ != wire.Result {
		return 0, fmt.Errorf("cluster: clock query answered with frame type %q", typ)
	}
	rs, err := wire.DecodeResultSet(resp)
	if err != nil {
		return 0, err
	}
	var clock int64
	for _, row := range rs.Rows {
		if len(row) > 0 && row[0].AsInt() > clock {
			clock = row[0].AsInt()
		}
	}
	return uint64(clock), nil
}
