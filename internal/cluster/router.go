package cluster

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"time"

	"lambdadb/internal/retry"
	"lambdadb/internal/server/wire"
	"lambdadb/internal/sql"
	"lambdadb/internal/telemetry"
)

// RouterConfig tunes the cluster router.
type RouterConfig struct {
	// Listen is the TCP address clients connect to, e.g. ":5440".
	Listen string
	// Nodes are the wire addresses of every cluster member. The router
	// discovers roles by probing; order carries no meaning.
	Nodes []string
	// ReadyURLs optionally maps each node (parallel to Nodes) to its admin
	// /readyz URL; a node answering anything but 200 is rotated out of read
	// routing even when its wire port still answers. "" skips the check.
	ReadyURLs []string
	// ProbeEvery is the health-check interval. <= 0 means 200ms.
	ProbeEvery time.Duration
	// FailAfter is how long a node may fail probes before it is declared
	// dead — for the primary, that is the failover trigger. <= 0 means 2s.
	FailAfter time.Duration
	// ReadyMaxLag rotates a replica out of read routing when its commit-
	// clock lag exceeds this many records. <= 0 disables the gate.
	ReadyMaxLag int64
	// DialTimeout bounds backend dials. <= 0 means 2s.
	DialTimeout time.Duration
	// WriteWait is how long a write waits for an electable primary (e.g.
	// mid-failover) before being refused read_only. <= 0 means 10s.
	WriteWait time.Duration
	// Logger receives routing and failover logs. Nil discards them.
	Logger *slog.Logger
	// Metrics receives the Router* counters. Nil allocates a private set.
	Metrics *telemetry.Metrics
}

func (c *RouterConfig) defaults() {
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 200 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteWait <= 0 {
		c.WriteWait = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Metrics == nil {
		c.Metrics = &telemetry.Metrics{}
	}
}

// Router is the cluster's client-facing front end. It speaks the ordinary
// wire protocol; clients connect to it exactly as they would to a single
// lambdaserver. Per request it classifies the statement text: reads fan
// out over lag-healthy replicas (transparently retried elsewhere on
// failure — reads are idempotent), writes stick to the current primary and
// are never replayed (a connection lost mid-write surfaces as a
// non-retryable error, because the commit may have happened). A background
// failure detector probes every node, performs epoch-fenced failover when
// the primary dies, and re-points survivors and rejoiners at the winner.
type Router struct {
	cfg RouterConfig
	log *slog.Logger
	m   *telemetry.Metrics

	ln       net.Listener
	nodes    []*backend
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	primary *backend // current believed primary; nil when none electable
	rr      int      // read round-robin cursor
	conns   map[net.Conn]struct{}
}

// NewRouter validates cfg and prepares a router; Listen + Serve run it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg.defaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one node")
	}
	if len(cfg.ReadyURLs) != 0 && len(cfg.ReadyURLs) != len(cfg.Nodes) {
		return nil, fmt.Errorf("cluster: %d ready URLs for %d nodes", len(cfg.ReadyURLs), len(cfg.Nodes))
	}
	rt := &Router{
		cfg: cfg, log: cfg.Logger, m: cfg.Metrics,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	for i, addr := range cfg.Nodes {
		b := &backend{addr: addr}
		if len(cfg.ReadyURLs) > 0 {
			b.readyURL = cfg.ReadyURLs[i]
		}
		rt.nodes = append(rt.nodes, b)
	}
	return rt, nil
}

// Listen binds the client listener and starts the failure detector.
func (rt *Router) Listen() error {
	ln, err := net.Listen("tcp", rt.cfg.Listen)
	if err != nil {
		return err
	}
	rt.ln = ln
	go rt.supervise()
	return nil
}

// Addr is the bound listen address (useful with ":0").
func (rt *Router) Addr() string {
	if rt.ln == nil {
		return rt.cfg.Listen
	}
	return rt.ln.Addr().String()
}

// Serve accepts client connections until Close.
func (rt *Router) Serve() error {
	for {
		nc, err := rt.ln.Accept()
		if err != nil {
			select {
			case <-rt.stop:
				return nil
			default:
				return err
			}
		}
		rt.mu.Lock()
		rt.conns[nc] = struct{}{}
		rt.mu.Unlock()
		go func() {
			defer func() {
				rt.mu.Lock()
				delete(rt.conns, nc)
				rt.mu.Unlock()
				nc.Close()
			}()
			rt.serveConn(nc)
		}()
	}
}

// Close stops the listener, the failure detector, and every client
// connection.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	if rt.ln != nil {
		rt.ln.Close()
	}
	<-rt.done
	rt.mu.Lock()
	for nc := range rt.conns {
		nc.Close()
	}
	rt.mu.Unlock()
}

// session is one client connection's routing state.
type session struct {
	rt    *Router
	inTxn bool // BEGIN seen; everything sticks to the primary until it ends

	// dirty marks that this session has written since its last read
	// barrier; the next replica-bound read first fetches the primary's
	// commit clock and prefixes WAIT FOR CLOCK so the session reads its own
	// writes.
	dirty   bool
	barrier uint64

	primaryConn *backendConn            // sticky write connection
	readConns   map[string]*backendConn // per-replica read connections
}

func (rt *Router) serveConn(nc net.Conn) {
	sess := &session{rt: rt, readConns: make(map[string]*backendConn)}
	defer sess.closeBackends()
	br := bufio.NewReader(nc)
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		switch typ {
		case wire.Query:
			err = sess.handleQuery(nc, payload)
		case wire.Prepare, wire.Bind, wire.Deallocate:
			// Prepared statements are per-backend-session server state, and
			// executing one may write: everything sticks to the primary.
			err = sess.handleSticky(nc, typ, payload)
		case wire.ReplStart:
			err = writeError(nc, "", "", nil, "the router does not accept replication streams; replicas connect to their primary directly")
		default:
			err = writeError(nc, "", "", nil, fmt.Sprintf("unexpected frame type %q", typ))
		}
		if err != nil {
			return // the client connection itself failed
		}
	}
}

func (s *session) closeBackends() {
	if s.primaryConn != nil {
		s.primaryConn.close()
		s.primaryConn = nil
	}
	for _, bc := range s.readConns {
		bc.close()
	}
	s.readConns = nil
}

// handleQuery routes one Query frame.
func (s *session) handleQuery(nc net.Conn, payload []byte) error {
	trace, body := wire.SplitTraced(payload)
	stmts, err := sql.SplitStatements(string(body))
	if err != nil || len(stmts) == 0 {
		// Let the real server produce the parse error so clients see the
		// same message with or without a router in between.
		return s.forwardWrite(nc, trace, payload)
	}
	if !s.inTxn && allReads(stmts) {
		return s.forwardRead(nc, trace, body, payload)
	}
	err = s.forwardWrite(nc, trace, payload)
	s.trackTxn(stmts)
	return err
}

// handleSticky forwards prepared-statement frames to the primary.
func (s *session) handleSticky(nc net.Conn, typ byte, payload []byte) error {
	trace, _ := wire.SplitTraced(payload)
	return s.forward(nc, typ, trace, payload)
}

// trackTxn updates the session's transaction flag from the statements just
// executed. It runs regardless of the outcome: assuming a transaction is
// still open when it is not only costs read locality (those reads go to
// the primary), never correctness.
func (s *session) trackTxn(stmts []string) {
	for _, st := range stmts {
		switch firstKeyword(st) {
		case "BEGIN":
			s.inTxn = true
		case "COMMIT", "ROLLBACK":
			s.inTxn = false
		}
	}
}

// readKeywords are the statement-leading keywords that never modify state;
// anything else routes to the primary.
var readKeywords = map[string]bool{
	"SELECT": true, "EXPLAIN": true, "ANALYZE": false, "WAIT": true,
}

func allReads(stmts []string) bool {
	for _, st := range stmts {
		if !readKeywords[firstKeyword(st)] {
			return false
		}
	}
	return true
}

// firstKeyword extracts the uppercased first word of a statement.
func firstKeyword(st string) string {
	st = strings.TrimSpace(st)
	end := 0
	for end < len(st) {
		c := st[end]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_') {
			break
		}
		end++
	}
	return strings.ToUpper(st[:end])
}

// forwardWrite sends a request that may modify state to the primary —
// exactly once. A rejection by a freshly-demoted node (read_only /
// not_primary) is safe to re-route, because the statement was refused
// before executing; a transport failure after the request was sent is not,
// and surfaces to the client as a non-retryable error.
func (s *session) forwardWrite(nc net.Conn, trace string, payload []byte) error {
	return s.forward(nc, wire.Query, trace, payload)
}

func (s *session) forward(nc net.Conn, typ byte, trace string, payload []byte) error {
	rt := s.rt
	bo := &retry.Backoff{Base: 50 * time.Millisecond, Max: time.Second}
	deadline := time.Now().Add(rt.cfg.WriteWait)
	for attempt := 0; ; attempt++ {
		bc, err := s.stickyPrimary()
		if err != nil {
			if time.Now().Before(deadline) {
				rt.pause(bo, attempt)
				continue
			}
			rt.m.RouterWritesRefused.Add(1)
			return writeError(nc, trace, wire.CodeReadOnly, nil,
				"cluster has no electable primary; serving reads only")
		}
		rtyp, rpayload, err := bc.roundTrip(typ, payload)
		if err != nil {
			// The connection died after the request may have been sent. The
			// write could have committed — never replay it.
			s.dropPrimary()
			return writeError(nc, trace, "", nil,
				fmt.Sprintf("primary connection lost mid-request; the statement may or may not have applied: %v", err))
		}
		if rtyp == wire.Error {
			_, rbody := wire.SplitTraced(rpayload)
			code, details, _ := wire.SplitErrorCode(rbody)
			if code == wire.CodeReadOnly || code == wire.CodeNotPrimary {
				// The node we thought was primary is fenced: it refused
				// before executing, so re-routing is safe, not a replay.
				s.dropPrimary()
				rt.notePrimaryRejected(bc.addr, details["primary"])
				if time.Now().Before(deadline) {
					rt.pause(bo, attempt)
					continue
				}
			}
		}
		rt.m.RouterWritesRouted.Add(1)
		if rtyp != wire.Error {
			s.dirty = true
		}
		return relay(nc, rtyp, rpayload)
	}
}

// forwardRead routes a read-only request: lag-healthy replicas first
// (round-robin), then the primary, then — read-only degradation — any
// healthy node at all. Reads are idempotent, so each failed backend is
// retried on the next transparently.
func (s *session) forwardRead(nc net.Conn, trace string, body, payload []byte) error {
	rt := s.rt
	replicas, primary, fallback := rt.readCandidates()
	if s.dirty {
		if err := s.refreshBarrier(); err != nil {
			// Could not learn the write barrier; the primary itself is
			// always read-your-writes-consistent, so route there.
			replicas = nil
		}
	}

	candidates := make([]*backend, 0, len(replicas)+1+len(fallback))
	candidates = append(candidates, replicas...)
	if primary != nil {
		candidates = append(candidates, primary)
	}
	candidates = append(candidates, fallback...)
	if len(candidates) == 0 {
		return writeError(nc, trace, wire.CodeUnavailable, nil, "no backend is reachable for reads")
	}

	bo := &retry.Backoff{Base: 10 * time.Millisecond, Max: 250 * time.Millisecond}
	var lastErr string
	for i, b := range candidates {
		if i > 0 {
			rt.m.RouterReadRetries.Add(1)
			rt.pause(bo, i-1)
		}
		req := payload
		if b != primary && s.barrier > 0 {
			// Read-your-writes: make the replica wait until it has applied
			// this session's last write before answering.
			prefixed := fmt.Sprintf("WAIT FOR CLOCK %d; %s", s.barrier, body)
			req = wire.AppendTraced(trace, []byte(prefixed))
		}
		bc, err := s.readConn(b)
		if err != nil {
			lastErr = err.Error()
			continue
		}
		rtyp, rpayload, err := bc.roundTrip(wire.Query, req)
		if err != nil {
			lastErr = err.Error()
			bc.close()
			delete(s.readConns, b.addr)
			continue
		}
		if rtyp == wire.Error {
			_, rbody := wire.SplitTraced(rpayload)
			code, _, msg := wire.SplitErrorCode(rbody)
			if code == wire.CodeRetryable || code == wire.CodeUnavailable {
				lastErr = msg
				continue
			}
		}
		rt.m.RouterReadsRouted.Add(1)
		return relay(nc, rtyp, rpayload)
	}
	return writeError(nc, trace, wire.CodeUnavailable, nil,
		fmt.Sprintf("every backend failed the read; last error: %s", lastErr))
}

// refreshBarrier captures the primary's commit clock after this session
// wrote, so replica reads can wait for it. Fetched lazily — on the first
// read after a write — to keep the write path itself one round trip.
func (s *session) refreshBarrier() error {
	if !s.dirty {
		return nil
	}
	bc, err := s.stickyPrimary()
	if err != nil {
		return err
	}
	clock, err := bc.queryClock()
	if err != nil {
		s.dropPrimary()
		return err
	}
	s.barrier = clock
	s.dirty = false
	return nil
}

// stickyPrimary returns this session's write connection, dialing the
// current primary if needed.
func (s *session) stickyPrimary() (*backendConn, error) {
	if s.primaryConn != nil {
		return s.primaryConn, nil
	}
	b := s.rt.currentPrimary()
	if b == nil {
		return nil, fmt.Errorf("cluster: no primary")
	}
	bc, err := dialBackendConn(b.addr, s.rt.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	s.primaryConn = bc
	return bc, nil
}

func (s *session) dropPrimary() {
	if s.primaryConn != nil {
		s.primaryConn.close()
		s.primaryConn = nil
	}
	// The server-side session (and any open transaction) died with the
	// connection.
	s.inTxn = false
}

// readConn returns (dialing if needed) this session's connection to b.
func (s *session) readConn(b *backend) (*backendConn, error) {
	if b == s.rt.currentPrimary() {
		return s.stickyPrimary()
	}
	if bc, ok := s.readConns[b.addr]; ok {
		return bc, nil
	}
	bc, err := dialBackendConn(b.addr, s.rt.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	s.readConns[b.addr] = bc
	return bc, nil
}

// relay writes one response frame to the client verbatim.
func relay(nc net.Conn, typ byte, payload []byte) error {
	return wire.WriteFrame(nc, typ, payload)
}

// writeError sends a router-synthesized Error frame, coded when code is
// non-empty and carrying the request's trace ID so the failure is
// attributable end to end.
func writeError(nc net.Conn, trace, code string, details map[string]string, msg string) error {
	body := []byte(msg)
	if code != "" {
		body = wire.EncodeErrorCode(code, details, msg)
	}
	return wire.WriteFrame(nc, wire.Error, wire.AppendTraced(trace, body))
}

// pause sleeps for the backoff's attempt delay, returning early if the
// router is shutting down.
func (rt *Router) pause(bo *retry.Backoff, attempt int) {
	t := time.NewTimer(bo.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
	case <-rt.stop:
	}
}
