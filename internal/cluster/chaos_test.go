package cluster

// The cluster chaos harness: three database nodes run as separate processes
// (this test binary re-execed) with semi-synchronous replication, fronted
// by a Router running in the parent. A writer inserts sequential ids
// through the router and journals which ones were acknowledged; a reader
// hammers SELECTs through the router for the entire test and records its
// longest outage. Rounds then inflict cluster-level calamities:
//
//   - kill -9 of the primary under write load: the router must detect the
//     death, promote the most-caught-up replica under a fresh epoch, and
//     let writes resume; the restarted ex-primary comes back still
//     believing it leads and must be demoted and resynced,
//   - a partition (SIGSTOP) of the primary: failover happens behind its
//     back; on heal (SIGCONT) the frozen ex-primary must not be able to
//     acknowledge anything under its stale epoch,
//   - kill -9 of a replica under load: reads keep flowing through the
//     survivors and the restarted replica converges.
//
// After every round the harness asserts zero acked-commit loss and full
// three-way convergence; at the end it verifies the single-writer-per-epoch
// invariant (exactly one node accepts a direct write), that every node
// agrees on the final epoch, and that reads stayed continuously available.
//
// Gated behind LAMBDADB_CHAOS_CLUSTER=1 (run via `make chaos-cluster`)
// because it forks processes and loops for a while.

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/repl"
	"lambdadb/internal/server"
	"lambdadb/internal/server/client"
	"lambdadb/internal/telemetry"
)

const (
	clusterChaosEnv        = "LAMBDADB_CHAOS_CLUSTER"
	clusterChaosEnvDir     = "LAMBDADB_CHAOS_CLUSTER_DIR"
	clusterChaosEnvAddr    = "LAMBDADB_CHAOS_CLUSTER_ADDR"
	clusterChaosEnvPrimary = "LAMBDADB_CHAOS_CLUSTER_PRIMARY"
)

// ---------------------------------------------------------------- parent

func TestClusterChaos(t *testing.T) {
	if os.Getenv(clusterChaosEnv) != "1" {
		t.Skip("set LAMBDADB_CHAOS_CLUSTER=1 (make chaos-cluster) to run the cluster chaos harness")
	}
	h := newClusterHarness(t)
	defer h.stopAll()

	h.setupSchema()
	h.startReader()

	// Round 1: kill -9 the primary under write load. The router promotes,
	// writes resume, and the restarted ex-primary — which comes back still
	// claiming the primary role under its old epoch — is demoted and
	// snapshot-resynced into the new regime.
	t.Log("round 1: kill -9 primary under load")
	pi := h.findPrimary()
	done := h.startLoad(150)
	h.children[pi].killHard(h.t)
	<-done
	h.waitWritable()
	h.children[pi] = h.startChild(pi, "") // restarts believing it is primary
	h.waitConverged("round 1")

	// Round 2: partition the new primary with SIGSTOP. Failover happens
	// behind its back; when the partition heals the frozen ex-primary must
	// not be able to ack anything under its stale epoch before the router
	// reconciles it down.
	t.Log("round 2: SIGSTOP partition of primary, then heal")
	pi = h.findPrimary()
	done = h.startLoad(120)
	h.children[pi].cmd.Process.Signal(syscall.SIGSTOP)
	// The writer may be frozen mid-request against the partitioned node, so
	// failover is verified with fresh sessions before the partition heals.
	h.waitWritable()
	h.children[pi].cmd.Process.Signal(syscall.SIGCONT)
	<-done
	h.waitConverged("round 2")

	// Round 3: kill -9 one replica under load. The router keeps serving
	// reads off the survivors; the restarted replica converges.
	t.Log("round 3: kill -9 replica under load")
	pi = h.findPrimary()
	ri := (pi + 1) % len(h.children)
	done = h.startLoad(120)
	h.children[ri].killHard(h.t)
	<-done
	h.children[ri] = h.startChild(ri, h.addrs[pi])
	h.waitConverged("round 3")

	// Single-writer-per-epoch: exactly one node accepts a direct write.
	writers := 0
	for i, addr := range h.addrs {
		id := int64(-(1000 + i))
		h.mu.Lock()
		h.tried[id] = true
		h.mu.Unlock()
		if _, err := chaosExec(addr, fmt.Sprintf("INSERT INTO chaos VALUES (%d)", id), 5*time.Second); err == nil {
			writers++
			h.mu.Lock()
			h.acked[id] = true
			h.mu.Unlock()
		}
	}
	if writers != 1 {
		t.Errorf("single-writer violated: %d of %d nodes accepted a direct write, want exactly 1", writers, len(h.addrs))
	}
	h.waitConverged("single-writer sentinel")

	// Epoch audit: two promotions happened, and after reconciliation every
	// node serves under the same, latest epoch.
	epochs := make([]int64, len(h.addrs))
	for i, addr := range h.addrs {
		res, err := chaosExec(addr, "SELECT MAX(epoch) FROM system.replication", 10*time.Second)
		if err != nil || len(res.Rows) == 0 {
			t.Fatalf("epoch audit on %s: %v", addr, err)
		}
		epochs[i] = res.Rows[0][0].AsInt()
	}
	for i, e := range epochs {
		if e != epochs[0] || e < 2 {
			t.Errorf("epoch audit: node epochs %v, want all equal and >= 2 (got %d on node %d)", epochs, e, i)
		}
	}

	// Continuous read availability: the reader ran through two failovers
	// and a replica death; its longest outage must stay well under the
	// failure-detection window plus retry slack.
	succ, gap := h.stopReader()
	t.Logf("reader: %d successful reads, longest outage %v", succ, gap)
	if succ < 50 {
		t.Errorf("reader made only %d successful reads", succ)
	}
	if gap > 8*time.Second {
		t.Errorf("reads were unavailable for %v, want < 8s", gap)
	}

	if got := h.metrics.RouterFailovers.Load(); got != 2 {
		t.Errorf("router_failovers = %d, want 2", got)
	}
}

type clusterHarness struct {
	t        *testing.T
	dirs     []string
	addrs    []string
	children []*clusterChild
	rt       *Router
	metrics  *telemetry.Metrics

	mu    sync.Mutex
	tried map[int64]bool
	acked map[int64]bool
	next  int64

	readerStop chan struct{}
	readerDone chan struct{}
	readerSucc int
	readerGap  time.Duration
}

type clusterChild struct {
	cmd  *exec.Cmd
	done chan error
	dead bool
}

func newClusterHarness(t *testing.T) *clusterHarness {
	t.Helper()
	h := &clusterHarness{
		t:     t,
		tried: map[int64]bool{},
		acked: map[int64]bool{},
	}
	for i := 0; i < 3; i++ {
		h.dirs = append(h.dirs, filepath.Join(t.TempDir(), fmt.Sprintf("node%d", i)))
		h.addrs = append(h.addrs, chaosFreeAddr(t))
	}
	h.children = make([]*clusterChild, 3)
	h.children[0] = h.startChild(0, "")
	h.children[1] = h.startChild(1, h.addrs[0])
	h.children[2] = h.startChild(2, h.addrs[0])

	h.metrics = &telemetry.Metrics{}
	rt, err := NewRouter(RouterConfig{
		Listen:     "127.0.0.1:0",
		Nodes:      h.addrs,
		ProbeEvery: 100 * time.Millisecond,
		FailAfter:  time.Second,
		WriteWait:  20 * time.Second,
		Metrics:    h.metrics,
		Logger:     slog.New(slog.NewTextHandler(os.Stderr, nil)).With("proc", "router"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Listen(); err != nil {
		t.Fatal(err)
	}
	go rt.Serve() //nolint:errcheck
	h.rt = rt
	return h
}

// chaosExec runs one statement on a fresh connection with a hard deadline.
// Everything the harness sends is bounded: a frozen (SIGSTOP) backend keeps
// its TCP stack ACKing, so an unbounded round-trip through the router would
// block until the partition heals.
func chaosExec(addr, stmt string, d time.Duration) (*client.Result, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.ExecContext(ctx, stmt)
}

// chaosFreeAddr grabs a loopback port and releases it for a child to bind.
// Node addresses must stay fixed across restarts, so children cannot use :0.
func chaosFreeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startChild launches node i as a separate process. replicaOf == "" makes
// it come up believing it is a primary — the rejoin path for an ex-primary.
func (h *clusterHarness) startChild(i int, replicaOf string) *clusterChild {
	h.t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestClusterChaosChild$")
	cmd.Env = append(os.Environ(),
		clusterChaosEnvDir+"="+h.dirs[i],
		clusterChaosEnvAddr+"="+h.addrs[i],
		clusterChaosEnvPrimary+"="+replicaOf,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		h.t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		h.t.Fatal(err)
	}
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "CHILD-READY") {
				close(ready)
				break
			}
		}
		for sc.Scan() { // drain
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		h.t.Fatalf("node %d child never became ready", i)
	}
	c := &clusterChild{cmd: cmd, done: make(chan error, 1)}
	go func() { c.done <- cmd.Wait() }()
	return c
}

func (c *clusterChild) killHard(t *testing.T) {
	t.Helper()
	c.cmd.Process.Signal(syscall.SIGKILL)
	select {
	case <-c.done:
		c.dead = true
	case <-time.After(30 * time.Second):
		t.Fatal("child did not die after SIGKILL")
	}
}

func (h *clusterHarness) stopAll() {
	if h.readerStop != nil {
		select {
		case <-h.readerStop:
		default:
			close(h.readerStop)
			<-h.readerDone
		}
	}
	for _, c := range h.children {
		if c == nil || c.dead {
			continue
		}
		c.cmd.Process.Signal(syscall.SIGCONT) // in case a partition is still in force
		c.cmd.Process.Signal(syscall.SIGTERM)
	}
	for i, c := range h.children {
		if c == nil || c.dead {
			continue
		}
		select {
		case err := <-c.done:
			if err != nil {
				h.t.Errorf("node %d did not drain cleanly: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			h.t.Errorf("node %d did not exit after SIGTERM", i)
		}
	}
	h.rt.Close()
}

func (h *clusterHarness) setupSchema() {
	h.t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		_, err := chaosExec(h.rt.Addr(), "CREATE TABLE IF NOT EXISTS chaos (id BIGINT)", 10*time.Second)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("schema setup: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// findPrimary asks each node directly which role it serves.
func (h *clusterHarness) findPrimary() int {
	h.t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		found := -1
		for i, addr := range h.addrs {
			if h.children[i] == nil || h.children[i].dead {
				continue
			}
			res, err := chaosExec(addr, "SELECT role FROM system.replication", 5*time.Second)
			if err != nil {
				continue
			}
			for _, row := range res.Rows {
				if row[0].S == "primary" {
					found = i
				}
			}
		}
		if found >= 0 {
			return found
		}
		if time.Now().After(deadline) {
			h.t.Fatal("no node claims the primary role")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// startLoad launches a write batch through the router; the returned channel
// closes when the batch finishes. Failed writes stay journaled as
// tried-but-unacked: they may legitimately be present or absent afterwards.
// The caller decides when to join — a writer blocked on a frozen (SIGSTOP)
// backend only unblocks after the partition heals, so the partition round
// must not wait for it before sending SIGCONT.
func (h *clusterHarness) startLoad(n int) chan struct{} {
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var c *client.Conn
		defer func() {
			if c != nil {
				c.Close()
			}
		}()
		for i := 0; i < n; i++ {
			if c == nil {
				var err error
				if c, err = client.Dial(h.rt.Addr()); err != nil {
					time.Sleep(50 * time.Millisecond)
					continue
				}
			}
			h.mu.Lock()
			id := h.next
			h.next++
			h.tried[id] = true
			h.mu.Unlock()
			if _, err := c.Exec(fmt.Sprintf("INSERT INTO chaos VALUES (%d)", id)); err != nil {
				c.Close()
				c = nil
				continue
			}
			h.mu.Lock()
			h.acked[id] = true
			h.mu.Unlock()
			// Pace the batch so it is still in flight when the calamity hits.
			time.Sleep(5 * time.Millisecond)
		}
	}()
	time.Sleep(300 * time.Millisecond) // let some writes land first
	return writerDone
}

// waitWritable blocks until a journaled write through the router succeeds —
// i.e. failover has completed.
func (h *clusterHarness) waitWritable() {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		h.mu.Lock()
		id := h.next
		h.next++
		h.tried[id] = true
		h.mu.Unlock()
		if _, err := chaosExec(h.rt.Addr(), fmt.Sprintf("INSERT INTO chaos VALUES (%d)", id), 5*time.Second); err == nil {
			h.mu.Lock()
			h.acked[id] = true
			h.mu.Unlock()
			return
		} else if time.Now().After(deadline) {
			h.t.Fatalf("writes never resumed after failover: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// idSet dumps the chaos table directly from one node.
func (h *clusterHarness) idSet(addr string) (map[int64]bool, error) {
	res, err := chaosExec(addr, "SELECT id FROM chaos", 10*time.Second)
	if err != nil {
		return nil, err
	}
	set := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		set[row[0].I] = true
	}
	return set, nil
}

// waitConverged asserts the cluster contract after a round: all three nodes
// hold identical contents, every acked id is present, and no phantom ids
// exist.
func (h *clusterHarness) waitConverged(round string) {
	h.t.Helper()
	h.mu.Lock()
	acked := make([]int64, 0, len(h.acked))
	for id := range h.acked {
		acked = append(acked, id)
	}
	tried := make(map[int64]bool, len(h.tried))
	for id := range h.tried {
		tried[id] = true
	}
	h.mu.Unlock()

	deadline := time.Now().Add(90 * time.Second)
	var sets []map[int64]bool
	for {
		sets = sets[:0]
		ok := true
		for _, addr := range h.addrs {
			set, err := h.idSet(addr)
			if err != nil {
				ok = false
				break
			}
			sets = append(sets, set)
		}
		if ok {
			for _, s := range sets[1:] {
				if !chaosSetsEqual(sets[0], s) {
					ok = false
					break
				}
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			sizes := make([]int, len(sets))
			for i, s := range sets {
				sizes[i] = len(s)
			}
			h.t.Fatalf("%s: cluster never converged: row counts %v", round, sizes)
		}
		time.Sleep(100 * time.Millisecond)
	}
	for _, id := range acked {
		if !sets[0][id] {
			h.t.Errorf("%s: ACKED COMMIT LOST: id %d", round, id)
		}
	}
	for id := range sets[0] {
		if !tried[id] {
			h.t.Errorf("%s: PHANTOM ROW: id %d", round, id)
		}
	}
	h.t.Logf("%s: %d tried, %d acked, %d rows converged on all 3 nodes",
		round, len(tried), len(acked), len(sets[0]))
}

func chaosSetsEqual(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// startReader launches the availability prober: SELECTs through the router
// every 50ms for the whole test, tracking the longest gap between
// successes.
func (h *clusterHarness) startReader() {
	h.readerStop = make(chan struct{})
	h.readerDone = make(chan struct{})
	go func() {
		defer close(h.readerDone)
		var c *client.Conn
		defer func() {
			if c != nil {
				c.Close()
			}
		}()
		last := time.Now()
		for {
			select {
			case <-h.readerStop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			if c == nil {
				var err error
				if c, err = client.Dial(h.rt.Addr()); err != nil {
					continue
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			_, err := c.ExecContext(ctx, "SELECT COUNT(*) FROM chaos")
			cancel()
			if err != nil {
				c.Close()
				c = nil
				continue
			}
			h.mu.Lock()
			h.readerSucc++
			if gap := time.Since(last); gap > h.readerGap {
				h.readerGap = gap
			}
			h.mu.Unlock()
			last = time.Now()
		}
	}()
}

func (h *clusterHarness) stopReader() (successes int, longestGap time.Duration) {
	close(h.readerStop)
	<-h.readerDone
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.readerSucc, h.readerGap
}

// ----------------------------------------------------------------- child

// TestClusterChaosChild is the re-execed node process: engine + cluster
// role machinery + wire server, exactly the lambdaserver wiring. It serves
// until SIGKILLed or drained by SIGTERM.
func TestClusterChaosChild(t *testing.T) {
	dir := os.Getenv(clusterChaosEnvDir)
	if dir == "" {
		t.Skip("cluster-chaos child")
	}
	addr := os.Getenv(clusterChaosEnvAddr)
	replicaOf := os.Getenv(clusterChaosEnvPrimary)

	var opts []engine.Option
	if replicaOf != "" {
		opts = append(opts, engine.WithReadReplica(replicaOf))
	}
	db, err := engine.OpenDir(dir, opts...)
	if err != nil {
		t.Fatalf("child: recovery failed: %v", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("proc", addr)
	node, err := NewNode(db, replicaOf, NodeConfig{
		Replica: repl.ReplicaConfig{
			DialTimeout: 2 * time.Second,
			ReadTimeout: 2 * time.Second,
			AckEvery:    10 * time.Millisecond,
			BaseBackoff: 20 * time.Millisecond,
			MaxBackoff:  300 * time.Millisecond,
			Logger:      logger,
		},
		Primary: repl.PrimaryConfig{
			HeartbeatEvery: 100 * time.Millisecond,
			SyncReplicas:   1,
			SyncTimeout:    2 * time.Second,
			Logger:         logger,
		},
		Logger: logger,
	})
	if err != nil {
		t.Fatalf("child: node: %v", err)
	}

	srv := server.New(db, server.Config{Addr: addr, ReplHandler: node})
	if err := srv.Listen(); err != nil {
		t.Fatalf("child: listen %s: %v", addr, err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	fmt.Println("CHILD-READY")
	os.Stdout.Sync()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		t.Fatalf("child: serve: %v", err)
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("child: drain: %v", err)
	}
	<-serveErr
	node.Close()
	if err := db.Close(); err != nil {
		t.Fatalf("child: close db: %v", err)
	}
}
