package plancache

import (
	"fmt"
	"sync"
	"testing"

	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// stub returns a distinct tiny plan node so tests can tell entries apart.
func stub(tag int) plan.Node {
	return &plan.Values{
		Sch:  types.Schema{{Name: "x", Type: types.Int64}},
		Rows: [][]types.Value{{types.NewInt(int64(tag))}},
	}
}

func TestCacheHitMissInvalidate(t *testing.T) {
	c := New(4)
	if e, o := c.Get("k", 1, 1); e != nil || o != Miss {
		t.Fatalf("empty get = %v, %v", e, o)
	}
	c.Put(&Entry{Key: "k", Plan: stub(1), DDLVer: 1, StatsVer: 1})
	e, o := c.Get("k", 1, 1)
	if e == nil || o != Hit || e.Hits != 1 {
		t.Fatalf("hit = %+v, %v", e, o)
	}
	// A DDL-version mismatch drops the entry.
	if _, o = c.Get("k", 2, 1); o != Invalidated {
		t.Fatalf("ddl mismatch = %v", o)
	}
	if _, o = c.Get("k", 2, 1); o != Miss {
		t.Fatalf("after invalidation = %v", o)
	}
	// Same for a stats-version mismatch.
	c.Put(&Entry{Key: "k", Plan: stub(2), DDLVer: 2, StatsVer: 1})
	if _, o = c.Get("k", 2, 9); o != Invalidated {
		t.Fatalf("stats mismatch = %v", o)
	}
	// Four misses: the empty get, both invalidations (an invalidation is
	// also a miss), and the get after the first invalidation.
	hits, misses, inv, entries := c.Stats()
	if hits != 1 || misses != 4 || inv != 2 || entries != 0 {
		t.Fatalf("stats = %d %d %d %d", hits, misses, inv, entries)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Put(&Entry{Key: fmt.Sprintf("k%d", i), Plan: stub(i)})
	}
	// Touch k0 so it is the most recently used.
	if _, o := c.Get("k0", 0, 0); o != Hit {
		t.Fatal("k0 should hit")
	}
	// Inserting a fourth entry evicts the LRU (k1).
	c.Put(&Entry{Key: "k3", Plan: stub(3)})
	if _, o := c.Get("k1", 0, 0); o != Miss {
		t.Fatal("k1 should have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, o := c.Get(k, 0, 0); o != Hit {
			t.Errorf("%s should still be cached", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	// Snapshot is MRU-first.
	snap := c.Snapshot()
	if snap[0].Key != "k3" && snap[0].Key != "k0" && snap[0].Key != "k2" {
		t.Fatalf("snapshot head = %q", snap[0].Key)
	}
}

func TestCacheReplace(t *testing.T) {
	c := New(2)
	c.Put(&Entry{Key: "k", Plan: stub(1), DDLVer: 1})
	c.Put(&Entry{Key: "k", Plan: stub(2), DDLVer: 2})
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	e, o := c.Get("k", 2, 0)
	if o != Hit || e.DDLVer != 2 {
		t.Fatalf("replaced entry = %+v, %v", e, o)
	}
}

func TestCacheDisabledAndNil(t *testing.T) {
	c := New(0)
	c.Put(&Entry{Key: "k", Plan: stub(1)})
	if _, o := c.Get("k", 0, 0); o != Miss {
		t.Fatal("size-0 cache should never hit")
	}
	var nilCache *Cache
	nilCache.Put(&Entry{Key: "k"})
	if _, o := nilCache.Get("k", 0, 0); o != Miss {
		t.Fatal("nil cache should miss")
	}
	if nilCache.Len() != 0 || nilCache.Snapshot() != nil {
		t.Fatal("nil cache should be empty")
	}
}

func TestCacheBulkInvalidate(t *testing.T) {
	c := New(8)
	for i := 0; i < 4; i++ {
		c.Put(&Entry{Key: fmt.Sprintf("k%d", i), Plan: stub(i), DDLVer: 1, StatsVer: 1})
	}
	c.Put(&Entry{Key: "fresh", Plan: stub(9), DDLVer: 2, StatsVer: 1})
	if n := c.Invalidate(2, 1); n != 4 {
		t.Fatalf("invalidated %d, want 4", n)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run with
// -race it proves the locking.
func TestCacheConcurrent(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g+i)%24)
				if _, o := c.Get(k, uint64(i%3), 0); o != Hit {
					c.Put(&Entry{Key: k, Plan: stub(i), DDLVer: uint64(i % 3)})
				}
				if i%100 == 0 {
					c.Snapshot()
					c.Invalidate(uint64(i%3), 0)
				}
			}
		}(g)
	}
	wg.Wait()
}
