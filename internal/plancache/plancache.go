// Package plancache implements the engine's shared LRU plan cache: built,
// optimized plan templates keyed on normalized statement text, stamped with
// the catalog (DDL) and statistics versions they were built against so a
// racing schema or stats change invalidates them instead of serving a stale
// plan.
package plancache

import (
	"container/list"
	"sync"

	"lambdadb/internal/plan"
)

// DefaultSize is the entry cap used when the engine is opened without an
// explicit plan-cache size.
const DefaultSize = 256

// Entry is one cached plan template plus the metadata needed to validate
// and observe it.
type Entry struct {
	Key      string    // normalized statement text ($N placeholders intact)
	Plan     plan.Node // template; execute via plan.Rebind, never directly
	NParams  int       // number of $N placeholders
	DDLVer   uint64    // storage DDL version read before the plan was built
	StatsVer uint64    // statistics version read before the plan was built
	Hits     int64     // lookup hits while cached
}

// Cache is a mutex-guarded LRU map. A size of 0 disables caching entirely
// (every Get misses, every Put is dropped).
type Cache struct {
	mu      sync.Mutex
	size    int
	entries map[string]*list.Element // value: *Entry
	order   *list.List               // front = most recently used

	hits          int64
	misses        int64
	invalidations int64
}

// New builds a cache holding at most size entries.
func New(size int) *Cache {
	if size < 0 {
		size = 0
	}
	return &Cache{
		size:    size,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Outcome classifies a Get: a hit, a plain miss, or an invalidation (the
// key was cached but stamped with stale versions, so the entry was dropped).
type Outcome int

// Get outcomes.
const (
	Hit Outcome = iota
	Miss
	Invalidated
)

// Get returns the entry for key when it exists and was built against the
// given DDL and stats versions. A version mismatch drops the entry and
// reports Invalidated (which is also a miss: the caller must rebuild).
func (c *Cache) Get(key string, ddlVer, statsVer uint64) (*Entry, Outcome) {
	if c == nil {
		return nil, Miss
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, Miss
	}
	e := el.Value.(*Entry)
	if e.DDLVer != ddlVer || e.StatsVer != statsVer {
		c.order.Remove(el)
		delete(c.entries, key)
		c.invalidations++
		c.misses++
		return nil, Invalidated
	}
	c.order.MoveToFront(el)
	e.Hits++
	c.hits++
	return e, Hit
}

// Put inserts or replaces the entry for e.Key, evicting the least recently
// used entry when the cache is full.
func (c *Cache) Put(e *Entry) {
	if c == nil || c.size == 0 || e == nil || e.Key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.Key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.size {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*Entry).Key)
	}
	c.entries[e.Key] = c.order.PushFront(e)
}

// Invalidate drops every entry whose stamped versions do not match the
// current ones. It is called opportunistically (lookups self-invalidate),
// so the engine only needs it for bulk drops.
func (c *Cache) Invalidate(ddlVer, statsVer uint64) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*Entry)
		if e.DDLVer != ddlVer || e.StatsVer != statsVer {
			c.order.Remove(el)
			delete(c.entries, e.Key)
			n++
		}
		el = next
	}
	c.invalidations += int64(n)
	return n
}

// Snapshot returns the cached entries, most recently used first. The
// returned entries are copies; mutating them does not affect the cache.
func (c *Cache) Snapshot() []Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*Entry))
	}
	return out
}

// Stats returns cumulative hit/miss/invalidation counters and the current
// entry count.
func (c *Cache) Stats() (hits, misses, invalidations int64, entries int) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidations, c.order.Len()
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
