// Package dataflow is the Apache Spark analog: a miniature partitioned
// dataflow engine with resilient-distributed-dataset-style collections,
// per-task scheduling, stage-by-stage materialization, and hash shuffles.
//
// It deliberately reproduces the comparator's cost structure from the
// paper's evaluation: work is parallel across partitions, but every stage
// materializes its output, every task passes through a scheduler, rows are
// individually allocated objects (as on the JVM), and iterative algorithms
// pay a shuffle per iteration. These are exactly the overheads that leave
// Spark "multiple times slower" than the in-database operators in
// Section 8.4.3 while still beating single-threaded tools.
package dataflow

import (
	"runtime"
	"sync"
)

// Engine is the mini-dataflow runtime: a task scheduler plus a default
// partition count.
type Engine struct {
	workers    int
	partitions int
}

// New creates an engine with the given parallelism; partitions default to
// 2× workers (a common Spark heuristic).
func New(workers int) *Engine {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, partitions: 2 * workers}
}

// Name implements contender.Engine.
func (*Engine) Name() string { return "Dataflow" }

// runTasks executes n tasks on the worker pool. Each task is dispatched
// through a channel — the analog of per-task scheduling overhead.
func (e *Engine) runTasks(n int, task func(i int)) {
	tasks := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				task(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
}

// rdd is a partitioned, immutable, fully materialized collection.
type rdd[T any] struct {
	parts [][]T
}

// parallelize splits a slice into partitions.
func parallelize[T any](e *Engine, items []T) *rdd[T] {
	nparts := e.partitions
	if nparts > len(items) {
		nparts = len(items)
	}
	if nparts < 1 {
		nparts = 1
	}
	out := &rdd[T]{parts: make([][]T, nparts)}
	chunk := (len(items) + nparts - 1) / nparts
	for p := 0; p < nparts; p++ {
		lo := p * chunk
		hi := lo + chunk
		if lo > len(items) {
			lo = len(items)
		}
		if hi > len(items) {
			hi = len(items)
		}
		out.parts[p] = items[lo:hi]
	}
	return out
}

// mapPartitions applies f to each partition, materializing a new RDD.
func mapPartitions[T, U any](e *Engine, r *rdd[T], f func(part []T) []U) *rdd[U] {
	out := &rdd[U]{parts: make([][]U, len(r.parts))}
	e.runTasks(len(r.parts), func(p int) {
		out.parts[p] = f(r.parts[p])
	})
	return out
}

// collect gathers all partitions at the driver.
func collect[T any](r *rdd[T]) []T {
	var out []T
	for _, p := range r.parts {
		out = append(out, p...)
	}
	return out
}

// pair is a keyed record for shuffles.
type pair[K comparable, V any] struct {
	Key K
	Val V
}

// reduceByKey hash-shuffles pairs into the engine's partition count and
// combines values per key: a map-side combine, an all-to-all exchange, and
// a reduce-side merge — the full cost of a Spark shuffle stage.
func reduceByKey[K comparable, V any](e *Engine, r *rdd[pair[K, V]],
	combine func(a, b V) V, hash func(K) uint64) *rdd[pair[K, V]] {

	nOut := e.partitions
	// Map side: per input partition, combine locally then bucket by target.
	buckets := make([][][]pair[K, V], len(r.parts)) // [inPart][outPart]
	e.runTasks(len(r.parts), func(p int) {
		local := make(map[K]V)
		for _, kv := range r.parts[p] {
			if v, ok := local[kv.Key]; ok {
				local[kv.Key] = combine(v, kv.Val)
			} else {
				local[kv.Key] = kv.Val
			}
		}
		outs := make([][]pair[K, V], nOut)
		for k, v := range local {
			t := int(hash(k) % uint64(nOut))
			outs[t] = append(outs[t], pair[K, V]{k, v})
		}
		buckets[p] = outs
	})
	// Reduce side: merge each target partition's incoming buckets.
	out := &rdd[pair[K, V]]{parts: make([][]pair[K, V], nOut)}
	e.runTasks(nOut, func(t int) {
		merged := make(map[K]V)
		for p := range buckets {
			for _, kv := range buckets[p][t] {
				if v, ok := merged[kv.Key]; ok {
					merged[kv.Key] = combine(v, kv.Val)
				} else {
					merged[kv.Key] = kv.Val
				}
			}
		}
		part := make([]pair[K, V], 0, len(merged))
		for k, v := range merged {
			part = append(part, pair[K, V]{k, v})
		}
		out.parts[t] = part
	})
	return out
}
