package dataflow

import (
	"math"
	"sort"

	"lambdadb/internal/contender"
)

// kmPartial is one partition's contribution to a k-Means update step.
type kmPartial struct {
	sums    []float64
	counts  []int64
	changed int
}

// KMeans implements contender.Engine. Points live as one row object per
// tuple (the JVM-style layout); each iteration is a mapPartitions stage
// whose partial aggregates are collected at the driver — MLlib's
// structure, with the same per-iteration scheduling and materialization
// overheads.
func (e *Engine) KMeans(data []float64, n, d int, centers []float64, k, maxIter int) []float64 {
	points := make([][]float64, n)
	for i := range points {
		points[i] = data[i*d : i*d+d]
	}
	pts := parallelize(e, points)
	// Assignments live alongside the points, partitioned identically.
	assigns := mapPartitions(e, pts, func(part [][]float64) []int32 {
		out := make([]int32, len(part))
		for i := range out {
			out[i] = -1
		}
		return out
	})

	cur := append([]float64{}, centers...)
	for iter := 0; iter < maxIter; iter++ {
		bcast := append([]float64{}, cur...) // broadcast variable
		partIdx := 0
		_ = partIdx
		partials := mapPartitionsIndexed(e, pts, func(p int, part [][]float64) []kmPartial {
			asn := assigns.parts[p]
			partial := kmPartial{sums: make([]float64, k*d), counts: make([]int64, k)}
			for i, row := range part {
				best, bestDist := int32(0), math.Inf(1)
				for c := 0; c < k; c++ {
					var dist float64
					cs := bcast[c*d : c*d+d]
					for j := 0; j < d; j++ {
						diff := row[j] - cs[j]
						dist += diff * diff
					}
					if dist < bestDist {
						best, bestDist = int32(c), dist
					}
				}
				if asn[i] != best {
					asn[i] = best
					partial.changed++
				}
				partial.counts[best]++
				ps := partial.sums[int(best)*d : int(best)*d+d]
				for j, v := range row {
					ps[j] += v
				}
			}
			return []kmPartial{partial}
		})
		// Driver-side reduce.
		totalSums := make([]float64, k*d)
		totalCounts := make([]int64, k)
		changed := 0
		for _, p := range collect(partials) {
			changed += p.changed
			for i, v := range p.sums {
				totalSums[i] += v
			}
			for c, v := range p.counts {
				totalCounts[c] += v
			}
		}
		for c := 0; c < k; c++ {
			if totalCounts[c] == 0 {
				continue
			}
			for j := 0; j < d; j++ {
				cur[c*d+j] = totalSums[c*d+j] / float64(totalCounts[c])
			}
		}
		if changed == 0 {
			break
		}
	}
	return cur
}

// mapPartitionsIndexed is mapPartitions with the partition index exposed.
func mapPartitionsIndexed[T, U any](e *Engine, r *rdd[T], f func(p int, part []T) []U) *rdd[U] {
	out := &rdd[U]{parts: make([][]U, len(r.parts))}
	e.runTasks(len(r.parts), func(p int) {
		out.parts[p] = f(p, r.parts[p])
	})
	return out
}

func hashInt32(k int32) uint64 {
	x := uint64(uint32(k))
	x ^= x >> 16
	x *= 0x45d9f3b
	x ^= x >> 16
	return x
}

// PageRank implements the classic Spark formulation: an adjacency-list
// pair RDD joined with a rank pair RDD each iteration, producing
// contributions that are shuffled by destination vertex and summed — one
// full shuffle per iteration, the dominant Spark cost the paper's 92×
// headline number reflects.
func (e *Engine) PageRank(src, dst []int64, damping float64, maxIter int) []float64 {
	// Dense relabeling in sorted original-id order.
	idset := map[int64]struct{}{}
	for i := range src {
		idset[src[i]] = struct{}{}
		idset[dst[i]] = struct{}{}
	}
	orig := make([]int64, 0, len(idset))
	for id := range idset {
		orig = append(orig, id)
	}
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	dense := make(map[int64]int32, len(orig))
	for i, id := range orig {
		dense[id] = int32(i)
	}
	n := len(orig)
	if n == 0 {
		return nil
	}

	adjMap := make(map[int32][]int32, n)
	for i := range src {
		s := dense[src[i]]
		adjMap[s] = append(adjMap[s], dense[dst[i]])
	}
	type vertexLinks struct {
		v     int32
		links []int32
	}
	var linksList []vertexLinks
	for v := int32(0); int(v) < n; v++ {
		linksList = append(linksList, vertexLinks{v, adjMap[v]})
	}
	links := parallelize(e, linksList)

	invN := 1.0 / float64(n)
	ranks := make([]float64, n)
	for v := range ranks {
		ranks[v] = invN
	}

	for iter := 0; iter < maxIter; iter++ {
		bcast := append([]float64{}, ranks...) // rank snapshot per iteration
		var danglingSum float64
		for _, vl := range linksList {
			if len(vl.links) == 0 {
				danglingSum += bcast[vl.v]
			}
		}
		base := (1-damping)*invN + damping*danglingSum*invN

		// Stage 1: flatMap contributions (materialized).
		contribs := mapPartitions(e, links, func(part []vertexLinks) []pair[int32, float64] {
			var out []pair[int32, float64]
			for _, vl := range part {
				if len(vl.links) == 0 {
					continue
				}
				share := bcast[vl.v] / float64(len(vl.links))
				for _, t := range vl.links {
					out = append(out, pair[int32, float64]{t, share})
				}
			}
			return out
		})
		// Stage 2: shuffle + sum by destination.
		summed := reduceByKey(e, contribs, func(a, b float64) float64 { return a + b }, hashInt32)
		// Stage 3: new ranks back at the driver.
		for v := range ranks {
			ranks[v] = base
		}
		for _, kv := range collect(summed) {
			ranks[kv.Key] += damping * kv.Val
		}
	}
	return ranks
}

// nbPartial is one partition's running moments per class.
type nbPartial struct {
	count map[int64]int64
	sum   map[int64][]float64
	sumSq map[int64][]float64
}

// NBTrain implements distributed moment aggregation with a driver-side
// merge, MLlib-style.
func (e *Engine) NBTrain(data []float64, n, d int, labels []int64) contender.NBModel {
	type row struct {
		feats []float64
		label int64
	}
	rows := make([]row, n)
	for i := range rows {
		rows[i] = row{feats: data[i*d : i*d+d], label: labels[i]}
	}
	rdds := parallelize(e, rows)
	partials := mapPartitions(e, rdds, func(part []row) []nbPartial {
		p := nbPartial{
			count: map[int64]int64{},
			sum:   map[int64][]float64{},
			sumSq: map[int64][]float64{},
		}
		for _, r := range part {
			s, ok := p.sum[r.label]
			if !ok {
				s = make([]float64, d)
				p.sum[r.label] = s
				p.sumSq[r.label] = make([]float64, d)
			}
			sq := p.sumSq[r.label]
			p.count[r.label]++
			for j, v := range r.feats {
				s[j] += v
				sq[j] += v * v
			}
		}
		return []nbPartial{p}
	})

	total := nbPartial{count: map[int64]int64{}, sum: map[int64][]float64{}, sumSq: map[int64][]float64{}}
	for _, p := range collect(partials) {
		for l, c := range p.count {
			total.count[l] += c
			if _, ok := total.sum[l]; !ok {
				total.sum[l] = make([]float64, d)
				total.sumSq[l] = make([]float64, d)
			}
			for j := 0; j < d; j++ {
				total.sum[l][j] += p.sum[l][j]
				total.sumSq[l][j] += p.sumSq[l][j]
			}
		}
	}

	m := contender.NBModel{}
	for l := range total.count {
		m.Labels = append(m.Labels, l)
	}
	sort.Slice(m.Labels, func(i, j int) bool { return m.Labels[i] < m.Labels[j] })
	numClasses := float64(len(m.Labels))
	for _, l := range m.Labels {
		cnt := float64(total.count[l])
		m.Priors = append(m.Priors, (cnt+1)/(float64(n)+numClasses))
		means := make([]float64, d)
		stds := make([]float64, d)
		for j := 0; j < d; j++ {
			mean := total.sum[l][j] / cnt
			variance := total.sumSq[l][j]/cnt - mean*mean
			if variance < 1e-9 {
				variance = 1e-9
			}
			means[j] = mean
			stds[j] = math.Sqrt(variance)
		}
		m.Means = append(m.Means, means)
		m.Stds = append(m.Stds, stds)
	}
	return m
}
