package contender_test

import (
	"math"
	"testing"

	"lambdadb/internal/analytics"
	"lambdadb/internal/contender"
	"lambdadb/internal/contender/dataflow"
	"lambdadb/internal/contender/singlecore"
	"lambdadb/internal/contender/udf"
	"lambdadb/internal/graph"
	"lambdadb/internal/workload"
)

// engines returns every comparator under test.
func engines() []contender.Engine {
	return []contender.Engine{
		singlecore.New(),
		dataflow.New(4),
		udf.New(4),
	}
}

// TestKMeansAgreesWithOperator cross-validates every comparator against the
// in-database kernel: identical protocol (Lloyd's, same init, fixed
// iterations) must give identical centers.
func TestKMeansAgreesWithOperator(t *testing.T) {
	const n, d, k, iters = 3000, 4, 3, 5
	data := workload.UniformVectors(n, d, 42)
	centers := workload.SampleCenters(data, n, d, k, 7)

	ref, err := analytics.KMeans(data, n, d, centers, k,
		analytics.KMeansOptions{MaxIter: iters, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines() {
		got := e.KMeans(data, n, d, centers, k, iters)
		for i := range ref.Centers {
			if math.Abs(got[i]-ref.Centers[i]) > 1e-9 {
				t.Errorf("%s: center[%d] = %v, want %v", e.Name(), i, got[i], ref.Centers[i])
				break
			}
		}
	}
}

func TestPageRankAgreesWithOperator(t *testing.T) {
	g := workload.SocialGraph(2000, 20000, 1)
	csr, err := graph.Build(g.Src, g.Dst)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 15
	ref, err := analytics.PageRank(csr, analytics.PageRankOptions{
		Damping: 0.85, Epsilon: 0, MaxIter: iters, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines() {
		got := e.PageRank(g.Src, g.Dst, 0.85, iters)
		if len(got) != len(ref.Ranks) {
			t.Fatalf("%s: %d ranks, want %d", e.Name(), len(got), len(ref.Ranks))
		}
		for v := range ref.Ranks {
			if math.Abs(got[v]-ref.Ranks[v]) > 1e-9 {
				t.Errorf("%s: rank[%d] = %v, want %v", e.Name(), v, got[v], ref.Ranks[v])
				break
			}
		}
	}
}

func TestNBTrainAgreesWithOperator(t *testing.T) {
	const n, d = 5000, 3
	data := workload.UniformVectors(n, d, 3)
	labels := workload.UniformLabels(n, 2, 4)
	ref, err := analytics.TrainNB(data, n, d, labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines() {
		got := e.NBTrain(data, n, d, labels)
		if len(got.Labels) != len(ref.Labels) {
			t.Fatalf("%s: labels %v, want %v", e.Name(), got.Labels, ref.Labels)
		}
		for c := range ref.Labels {
			if got.Labels[c] != ref.Labels[c] {
				t.Errorf("%s: label[%d] = %d, want %d", e.Name(), c, got.Labels[c], ref.Labels[c])
			}
			if math.Abs(got.Priors[c]-ref.Priors[c]) > 1e-12 {
				t.Errorf("%s: prior[%d] = %v, want %v", e.Name(), c, got.Priors[c], ref.Priors[c])
			}
			for j := 0; j < d; j++ {
				if math.Abs(got.Means[c][j]-ref.Means[c][j]) > 1e-9 {
					t.Errorf("%s: mean[%d][%d] = %v, want %v", e.Name(), c, j, got.Means[c][j], ref.Means[c][j])
				}
				if math.Abs(got.Stds[c][j]-ref.Stds[c][j]) > 1e-9 {
					t.Errorf("%s: std[%d][%d] = %v, want %v", e.Name(), c, j, got.Stds[c][j], ref.Stds[c][j])
				}
			}
		}
	}
}

func TestPageRankPreservesSparseIDsAcrossEngines(t *testing.T) {
	src := []int64{100, 200, 300}
	dst := []int64{200, 300, 100}
	var ranks [][]float64
	for _, e := range engines() {
		ranks = append(ranks, e.PageRank(src, dst, 0.85, 10))
	}
	for i := 1; i < len(ranks); i++ {
		for v := range ranks[0] {
			if math.Abs(ranks[i][v]-ranks[0][v]) > 1e-9 {
				t.Errorf("engine %d disagrees at %d", i, v)
			}
		}
	}
}
