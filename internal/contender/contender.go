// Package contender defines the common interface of the simulated
// comparator systems used in the paper's evaluation (Section 8.2). The
// paper compared HyPer against MATLAB (single-threaded dedicated tool),
// Apache Spark MLlib (partitioned dataflow engine), and MADlib on Greenplum
// (UDF-layer database extension). Those systems cannot run here, so each
// subpackage reproduces the corresponding *cost structure* with a from-
// scratch engine — see DESIGN.md's substitution table.
package contender

// Engine is the contract every comparator implements: the three algorithms
// of the paper's evaluation under the same protocol as the in-database
// operators (Lloyd's k-Means with fixed iterations, fixed-iteration
// PageRank, Gaussian Naive Bayes training).
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// KMeans clusters n d-dimensional tuples (row-major) starting from k
	// centers (row-major, not mutated), running exactly maxIter iterations
	// or until assignments stabilize. Returns the final centers.
	KMeans(data []float64, n, d int, centers []float64, k, maxIter int) []float64
	// PageRank ranks the graph given as a directed edge list, running
	// maxIter iterations with the given damping factor. Returns ranks by
	// dense vertex id (sorted original id order).
	PageRank(src, dst []int64, damping float64, maxIter int) []float64
	// NBTrain trains Gaussian Naive Bayes: per sorted class, a prior and
	// per-feature mean/stddev.
	NBTrain(data []float64, n, d int, labels []int64) NBModel
}

// NBModel is the comparator-side Naive Bayes model representation.
type NBModel struct {
	Labels []int64
	Priors []float64
	Means  [][]float64
	Stds   [][]float64
}
