// Package udf is the MADlib-on-Greenplum analog: analytics as black-box
// user-defined aggregate functions driven row at a time by a host
// executor. It reproduces the layer-2 cost structure of the paper's
// Figure 1:
//
//   - every tuple crosses an opaque function-call boundary (interface
//     dispatch per row — no inlining, no fusion, the "black box" of
//     Section 4.1),
//   - the host re-materializes and copies the input for every iteration
//     (the per-iteration SQL round trip MADlib performs), and
//   - execution is parallel across segments, but the aggregate state
//     merge protocol (init / accumulate / merge / final) is the only
//     structure the host understands.
package udf

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"lambdadb/internal/contender"
)

// aggregateUDF is the user-defined aggregate contract: the host executor
// treats implementations as opaque code, calling Accumulate once per row.
type aggregateUDF interface {
	// NewState returns a fresh per-segment state.
	NewState() any
	// Accumulate folds one row into the state.
	Accumulate(state any, row []float64) any
	// Merge combines two segment states.
	Merge(a, b any) any
}

// Engine is the UDF-layer comparator. Segments mirror Greenplum's
// parallelism model.
type Engine struct {
	segments int
}

// New creates the engine with the given segment count.
func New(segments int) *Engine {
	if segments < 1 {
		segments = runtime.GOMAXPROCS(0)
	}
	return &Engine{segments: segments}
}

// Name implements contender.Engine.
func (*Engine) Name() string { return "UDF" }

// runAggregate drives a UDF over materialized rows, one interface call per
// row, parallel across segments, merging states at the coordinator.
func (e *Engine) runAggregate(udf aggregateUDF, rows [][]float64) any {
	segs := e.segments
	if segs > len(rows) {
		segs = len(rows)
	}
	if segs < 1 {
		segs = 1
	}
	states := make([]any, segs)
	chunk := (len(rows) + segs - 1) / segs
	var wg sync.WaitGroup
	for s := 0; s < segs; s++ {
		lo := s * chunk
		hi := lo + chunk
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			state := udf.NewState()
			for _, row := range rows[lo:hi] {
				state = udf.Accumulate(state, row)
			}
			states[s] = state
		}(s, lo, hi)
	}
	wg.Wait()
	total := states[0]
	for _, s := range states[1:] {
		total = udf.Merge(total, s)
	}
	return total
}

// materialize copies the dataset into per-row objects — the data transfer
// into the UDF layer that MADlib pays on every aggregate invocation.
func materialize(data []float64, n, d int) [][]float64 {
	rows := make([][]float64, n)
	backing := make([]float64, n*d)
	copy(backing, data)
	for i := range rows {
		rows[i] = backing[i*d : i*d+d]
	}
	return rows
}

// kmState is the k-Means aggregate state.
type kmState struct {
	sums    []float64
	counts  []int64
	changed int
}

// kmUDF is one k-Means iteration as a user-defined aggregate.
type kmUDF struct {
	centers []float64
	k, d    int
	// assign is indexed by a row-id smuggled in the last row slot, the way
	// MADlib keeps per-row cluster ids in a temp table between iterations.
	assign []int32
}

func (u *kmUDF) NewState() any {
	return &kmState{sums: make([]float64, u.k*u.d), counts: make([]int64, u.k)}
}

func (u *kmUDF) Accumulate(state any, row []float64) any {
	s := state.(*kmState)
	id := int(row[u.d])
	feats := row[:u.d]
	best, bestDist := int32(0), math.Inf(1)
	for c := 0; c < u.k; c++ {
		var dist float64
		cs := u.centers[c*u.d : c*u.d+u.d]
		for j := 0; j < u.d; j++ {
			diff := feats[j] - cs[j]
			dist += diff * diff
		}
		if dist < bestDist {
			best, bestDist = int32(c), dist
		}
	}
	if u.assign[id] != best {
		u.assign[id] = best
		s.changed++
	}
	s.counts[best]++
	cs := s.sums[int(best)*u.d : int(best)*u.d+u.d]
	for j := 0; j < u.d; j++ {
		cs[j] += feats[j]
	}
	return s
}

func (u *kmUDF) Merge(a, b any) any {
	x, y := a.(*kmState), b.(*kmState)
	for i, v := range y.sums {
		x.sums[i] += v
	}
	for i, v := range y.counts {
		x.counts[i] += v
	}
	x.changed += y.changed
	return x
}

// KMeans implements contender.Engine: one aggregate invocation per
// iteration, with the input re-materialized each time (the SQL round
// trip).
func (e *Engine) KMeans(data []float64, n, d int, centers []float64, k, maxIter int) []float64 {
	cur := append([]float64{}, centers...)
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	// Rows carry (features..., rowid) like MADlib's points table.
	wide := make([]float64, n*(d+1))
	for i := 0; i < n; i++ {
		copy(wide[i*(d+1):], data[i*d:i*d+d])
		wide[i*(d+1)+d] = float64(i)
	}
	for iter := 0; iter < maxIter; iter++ {
		rows := materialize(wide, n, d+1) // per-iteration round trip
		udf := &kmUDF{centers: cur, k: k, d: d, assign: assign}
		res := e.runAggregate(udf, rows).(*kmState)
		for c := 0; c < k; c++ {
			if res.counts[c] == 0 {
				continue
			}
			for j := 0; j < d; j++ {
				cur[c*d+j] = res.sums[c*d+j] / float64(res.counts[c])
			}
		}
		if res.changed == 0 {
			break
		}
	}
	return cur
}

// prState is a PageRank iteration's aggregate state: incoming rank sums.
type prState struct {
	incoming []float64
}

// prUDF computes one PageRank iteration over edge rows (src, dst).
type prUDF struct {
	contrib []float64
	n       int
}

func (u *prUDF) NewState() any { return &prState{incoming: make([]float64, u.n)} }

func (u *prUDF) Accumulate(state any, row []float64) any {
	s := state.(*prState)
	s.incoming[int(row[1])] += u.contrib[int(row[0])]
	return s
}

func (u *prUDF) Merge(a, b any) any {
	x, y := a.(*prState), b.(*prState)
	for i, v := range y.incoming {
		x.incoming[i] += v
	}
	return x
}

// PageRank runs each iteration as an aggregate over the edge table — the
// relational formulation MADlib uses, re-materializing the edge relation
// per iteration.
func (e *Engine) PageRank(src, dst []int64, damping float64, maxIter int) []float64 {
	idset := map[int64]struct{}{}
	for i := range src {
		idset[src[i]] = struct{}{}
		idset[dst[i]] = struct{}{}
	}
	orig := make([]int64, 0, len(idset))
	for id := range idset {
		orig = append(orig, id)
	}
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	dense := make(map[int64]int, len(orig))
	for i, id := range orig {
		dense[id] = i
	}
	n := len(orig)
	if n == 0 {
		return nil
	}
	outDeg := make([]float64, n)
	edges := make([]float64, 0, 2*len(src))
	for i := range src {
		s, t := dense[src[i]], dense[dst[i]]
		outDeg[s]++
		edges = append(edges, float64(s), float64(t))
	}

	invN := 1.0 / float64(n)
	rank := make([]float64, n)
	for v := range rank {
		rank[v] = invN
	}
	contrib := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			} else {
				contrib[v] = rank[v] / outDeg[v]
			}
		}
		base := (1-damping)*invN + damping*dangling*invN
		rows := materialize(edges, len(src), 2) // edge-table round trip
		udf := &prUDF{contrib: contrib, n: n}
		res := e.runAggregate(udf, rows).(*prState)
		for v := 0; v < n; v++ {
			rank[v] = base + damping*res.incoming[v]
		}
	}
	return rank
}

// nbState holds per-class moment maps.
type nbState struct {
	count map[int64]int64
	sum   map[int64][]float64
	sumSq map[int64][]float64
}

type nbUDF struct{ d int }

func (u *nbUDF) NewState() any {
	return &nbState{count: map[int64]int64{}, sum: map[int64][]float64{}, sumSq: map[int64][]float64{}}
}

func (u *nbUDF) Accumulate(state any, row []float64) any {
	s := state.(*nbState)
	label := int64(row[u.d])
	sum, ok := s.sum[label]
	if !ok {
		sum = make([]float64, u.d)
		s.sum[label] = sum
		s.sumSq[label] = make([]float64, u.d)
	}
	sq := s.sumSq[label]
	s.count[label]++
	for j := 0; j < u.d; j++ {
		v := row[j]
		sum[j] += v
		sq[j] += v * v
	}
	return s
}

func (u *nbUDF) Merge(a, b any) any {
	x, y := a.(*nbState), b.(*nbState)
	for l, c := range y.count {
		x.count[l] += c
		if _, ok := x.sum[l]; !ok {
			x.sum[l] = y.sum[l]
			x.sumSq[l] = y.sumSq[l]
			continue
		}
		for j := range y.sum[l] {
			x.sum[l][j] += y.sum[l][j]
			x.sumSq[l][j] += y.sumSq[l][j]
		}
	}
	return x
}

// NBTrain implements contender.Engine through a single aggregate pass.
func (e *Engine) NBTrain(data []float64, n, d int, labels []int64) contender.NBModel {
	wide := make([]float64, n*(d+1))
	for i := 0; i < n; i++ {
		copy(wide[i*(d+1):], data[i*d:i*d+d])
		wide[i*(d+1)+d] = float64(labels[i])
	}
	rows := materialize(wide, n, d+1)
	res := e.runAggregate(&nbUDF{d: d}, rows).(*nbState)

	m := contender.NBModel{}
	for l := range res.count {
		m.Labels = append(m.Labels, l)
	}
	sort.Slice(m.Labels, func(i, j int) bool { return m.Labels[i] < m.Labels[j] })
	numClasses := float64(len(m.Labels))
	for _, l := range m.Labels {
		cnt := float64(res.count[l])
		m.Priors = append(m.Priors, (cnt+1)/(float64(n)+numClasses))
		means := make([]float64, d)
		stds := make([]float64, d)
		for j := 0; j < d; j++ {
			mean := res.sum[l][j] / cnt
			variance := res.sumSq[l][j]/cnt - mean*mean
			if variance < 1e-9 {
				variance = 1e-9
			}
			means[j] = mean
			stds[j] = math.Sqrt(variance)
		}
		m.Means = append(m.Means, means)
		m.Stds = append(m.Stds, stds)
	}
	return m
}
