// Package singlecore is the MATLAB analog: clean, straightforward,
// strictly single-threaded implementations of the evaluation algorithms.
// The paper includes MATLAB because "multiple heavily used data analytics
// tools do not support parallelism" (Section 8.4.3); this engine isolates
// exactly that property.
package singlecore

import (
	"math"
	"sort"

	"lambdadb/internal/contender"
)

// Engine is the single-threaded comparator.
type Engine struct{}

// New returns the engine.
func New() *Engine { return &Engine{} }

// Name implements contender.Engine.
func (*Engine) Name() string { return "SingleCore" }

// KMeans implements Lloyd's algorithm in one thread.
func (*Engine) KMeans(data []float64, n, d int, centers []float64, k, maxIter int) []float64 {
	cur := append([]float64{}, centers...)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	sums := make([]float64, k*d)
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := 0
		for i := 0; i < n; i++ {
			row := data[i*d : i*d+d]
			best, bestDist := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				var dist float64
				cs := cur[c*d : c*d+d]
				for j := 0; j < d; j++ {
					diff := row[j] - cs[j]
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed++
			}
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for j := 0; j < d; j++ {
				sums[c*d+j] += data[i*d+j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for j := 0; j < d; j++ {
				cur[c*d+j] = sums[c*d+j] / float64(counts[c])
			}
		}
		if changed == 0 {
			break
		}
	}
	return cur
}

// PageRank implements the power iteration in one thread over an adjacency
// list built from the edge list.
func (*Engine) PageRank(src, dst []int64, damping float64, maxIter int) []float64 {
	// Dense relabeling in sorted order, matching the in-database operator.
	idset := map[int64]struct{}{}
	for i := range src {
		idset[src[i]] = struct{}{}
		idset[dst[i]] = struct{}{}
	}
	orig := make([]int64, 0, len(idset))
	for id := range idset {
		orig = append(orig, id)
	}
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	dense := make(map[int64]int, len(orig))
	for i, id := range orig {
		dense[id] = i
	}
	n := len(orig)
	if n == 0 {
		return nil
	}
	out := make([][]int32, n)
	for i := range src {
		s := dense[src[i]]
		out[s] = append(out[s], int32(dense[dst[i]]))
	}

	invN := 1.0 / float64(n)
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = invN
	}
	for iter := 0; iter < maxIter; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if len(out[v]) == 0 {
				dangling += rank[v]
			}
		}
		base := (1-damping)*invN + damping*dangling*invN
		for v := range next {
			next[v] = base
		}
		for v := 0; v < n; v++ {
			if len(out[v]) == 0 {
				continue
			}
			share := damping * rank[v] / float64(len(out[v]))
			for _, t := range out[v] {
				next[t] += share
			}
		}
		rank, next = next, rank
	}
	return rank
}

// NBTrain trains Gaussian Naive Bayes in one pass, one thread.
func (*Engine) NBTrain(data []float64, n, d int, labels []int64) contender.NBModel {
	count := map[int64]int64{}
	sum := map[int64][]float64{}
	sumSq := map[int64][]float64{}
	for i := 0; i < n; i++ {
		l := labels[i]
		s, ok := sum[l]
		if !ok {
			s = make([]float64, d)
			sum[l] = s
			sumSq[l] = make([]float64, d)
		}
		sq := sumSq[l]
		count[l]++
		for j := 0; j < d; j++ {
			v := data[i*d+j]
			s[j] += v
			sq[j] += v * v
		}
	}
	m := contender.NBModel{}
	for l := range count {
		m.Labels = append(m.Labels, l)
	}
	sort.Slice(m.Labels, func(i, j int) bool { return m.Labels[i] < m.Labels[j] })
	numClasses := float64(len(m.Labels))
	for _, l := range m.Labels {
		cnt := float64(count[l])
		m.Priors = append(m.Priors, (cnt+1)/(float64(n)+numClasses))
		means := make([]float64, d)
		stds := make([]float64, d)
		for j := 0; j < d; j++ {
			mean := sum[l][j] / cnt
			variance := sumSq[l][j]/cnt - mean*mean
			if variance < 1e-9 {
				variance = 1e-9
			}
			means[j] = mean
			stds[j] = math.Sqrt(variance)
		}
		m.Means = append(m.Means, means)
		m.Stds = append(m.Stds, stds)
	}
	return m
}
