package load

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

func newStoreWithTable(t *testing.T) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	_, err := s.CreateTable("t", types.Schema{
		{Name: "id", Type: types.Int64},
		{Name: "v", Type: types.Float64},
		{Name: "name", Type: types.String},
		{Name: "ok", Type: types.Bool},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func scanRows(t *testing.T, s *storage.Store) [][]types.Value {
	t.Helper()
	tbl, err := s.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]types.Value
	err = tbl.Scan(s.Snapshot(), func(b *types.Batch) error {
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, b.Row(i))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestCSVBasic(t *testing.T) {
	s := newStoreWithTable(t)
	in := "1,1.5,alice,true\n2,2.5,bob,false\n"
	n, err := CSV(s, "t", strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d rows", n)
	}
	rows := scanRows(t, s)
	if rows[0][0].I != 1 || rows[0][1].F != 1.5 || rows[0][2].S != "alice" || !rows[0][3].B {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][3].B {
		t.Errorf("row 1 bool = %v", rows[1][3])
	}
}

func TestCSVHeaderSkipped(t *testing.T) {
	s := newStoreWithTable(t)
	in := "id,v,name,ok\n7,0.5,x,1\n"
	n, err := CSV(s, "t", strings.NewReader(in), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d rows", n)
	}
	if rows := scanRows(t, s); rows[0][0].I != 7 {
		t.Errorf("row = %v", rows[0])
	}
}

func TestCSVNullsAndQuotes(t *testing.T) {
	s := newStoreWithTable(t)
	in := `1,,"say ""hi"", friend",true` + "\n" + `2,3.5,\N,false` + "\n"
	n, err := CSV(s, "t", strings.NewReader(in), Options{NullToken: `\N`})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d", n)
	}
	rows := scanRows(t, s)
	if !rows[0][1].Null {
		t.Errorf("empty float field should be NULL: %v", rows[0][1])
	}
	if rows[0][2].S != `say "hi", friend` {
		t.Errorf("quoted field = %q", rows[0][2].S)
	}
	if !rows[1][2].Null {
		t.Errorf("null token should be NULL: %v", rows[1][2])
	}
}

func TestCSVCustomDelimiter(t *testing.T) {
	s := newStoreWithTable(t)
	in := "1|2.0|a|t\n"
	if _, err := CSV(s, "t", strings.NewReader(in), Options{Delimiter: '|'}); err != nil {
		t.Fatal(err)
	}
	if rows := scanRows(t, s); rows[0][2].S != "a" {
		t.Errorf("row = %v", rows[0])
	}
}

func TestCSVErrors(t *testing.T) {
	s := newStoreWithTable(t)
	cases := []string{
		"1,2.0,a\n",         // too few fields
		"1,2.0,a,t,extra\n", // too many fields
		"x,2.0,a,t\n",       // bad int
		"1,notafloat,a,t\n", // bad float
		"1,2.0,a,maybe\n",   // bad bool
	}
	for _, in := range cases {
		if _, err := CSV(s, "t", strings.NewReader(in), Options{}); err == nil {
			t.Errorf("CSV(%q) should fail", in)
		}
	}
	if _, err := CSV(s, "missing", strings.NewReader("1\n"), Options{}); err == nil {
		t.Error("missing table should fail")
	}
	// A failed load must not leave partial rows behind.
	if rows := scanRows(t, s); len(rows) != 0 {
		t.Errorf("failed loads left %d rows", len(rows))
	}
}

func TestCSVParallelMatchesSerial(t *testing.T) {
	var sb strings.Builder
	const n = 20_000
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d,%g,row%d,%v\n", i, float64(i)*0.5, i, i%2 == 0)
	}
	in := sb.String()

	loadWith := func(workers int) [][]types.Value {
		s := newStoreWithTable(t)
		cnt, err := CSV(s, "t", strings.NewReader(in), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if cnt != n {
			t.Fatalf("workers=%d loaded %d rows, want %d", workers, cnt, n)
		}
		return scanRows(t, s)
	}
	serial := loadWith(1)
	parallel := loadWith(8)
	// Row multiset must match; parallel chunks preserve order per chunk and
	// chunks are installed in order, so full order matches too.
	for i := range serial {
		for j := range serial[i] {
			if !serial[i][j].Equal(parallel[i][j]) && !(serial[i][j].Null && parallel[i][j].Null) {
				t.Fatalf("row %d col %d: %v vs %v", i, j, serial[i][j], parallel[i][j])
			}
		}
	}
}

func TestSplitChunksProperty(t *testing.T) {
	// Property: chunks are line-aligned and concatenate back to the input.
	f := func(lines uint8, parts uint8) bool {
		n := int(lines%40) + 1
		p := int(parts%8) + 1
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "line%d\n", i)
		}
		data := []byte(sb.String())
		chunks := splitChunks(data, p)
		var rejoined []byte
		for _, c := range chunks {
			if len(c) > 0 && c[len(c)-1] != '\n' && !strings.HasSuffix(sb.String(), string(c)) {
				return false // only the final chunk may lack a newline
			}
			rejoined = append(rejoined, c...)
		}
		return string(rejoined) == sb.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVCRLF(t *testing.T) {
	s := newStoreWithTable(t)
	in := "1,2.0,a,t\r\n2,3.0,b,f\r\n"
	n, err := CSV(s, "t", strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d", n)
	}
	if rows := scanRows(t, s); rows[1][2].S != "b" {
		t.Errorf("CRLF row = %v", rows[1])
	}
}
