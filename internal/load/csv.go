// Package load implements bulk CSV ingestion in the spirit of HyPer's
// Instant Loading (Mühlbauer et al., VLDB 2013 — cited in the paper's
// Section 3 as one of the properties making HyPer attractive for data
// scientists): the input is split at tuple boundaries into chunks that
// workers parse in parallel straight into columnar batches, which are
// installed under a single transaction.
package load

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// Options configures CSV parsing.
type Options struct {
	// Header skips the first line (and, when CreateTable names are needed,
	// provides them).
	Header bool
	// Delimiter separates fields; 0 means ','.
	Delimiter byte
	// Workers is the parse parallelism; 0 means 1.
	Workers int
	// NullToken is the unquoted token treated as NULL (besides the empty
	// field); "" disables token matching.
	NullToken string
}

func (o Options) delim() byte {
	if o.Delimiter == 0 {
		return ','
	}
	return o.Delimiter
}

// CSV parses the entire reader into the given table (which must exist) and
// commits the rows as one transaction. It returns the number of rows
// loaded.
func CSV(store *storage.Store, table string, r io.Reader, opts Options) (int, error) {
	tbl, err := store.Table(table)
	if err != nil {
		return 0, err
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	if opts.Header {
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			data = data[i+1:]
		} else {
			data = nil
		}
	}
	chunks := splitChunks(data, opts.workers())
	batches := make([]*types.Batch, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		wg.Add(1)
		go func(i int, chunk []byte) {
			defer wg.Done()
			batches[i], errs[i] = parseChunk(chunk, tbl.Schema(), opts)
		}(i, chunk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	tx := store.Begin()
	total := 0
	for _, b := range batches {
		if b == nil || b.Len() == 0 {
			continue
		}
		total += b.Len()
		if err := tx.Insert(tbl, b); err != nil {
			tx.Rollback()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return total, nil
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// splitChunks cuts data into roughly equal pieces aligned to line
// boundaries, so each worker parses whole tuples only.
func splitChunks(data []byte, parts int) [][]byte {
	if len(data) == 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	const minChunk = 64 << 10
	if len(data) < 2*minChunk {
		parts = 1
	}
	out := make([][]byte, 0, parts)
	chunk := len(data) / parts
	start := 0
	for p := 0; p < parts-1; p++ {
		end := start + chunk
		if end >= len(data) {
			break
		}
		// Advance to the next newline so the cut lands between tuples.
		for end < len(data) && data[end] != '\n' {
			end++
		}
		if end < len(data) {
			end++ // include the newline
		}
		if end > start {
			out = append(out, data[start:end])
		}
		start = end
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// parseChunk parses full lines of CSV into a columnar batch.
func parseChunk(chunk []byte, schema types.Schema, opts Options) (*types.Batch, error) {
	b := types.NewBatch(schema)
	delim := opts.delim()
	fields := make([]string, 0, len(schema))
	line := 0
	for len(chunk) > 0 {
		line++
		var row []byte
		if i := bytes.IndexByte(chunk, '\n'); i >= 0 {
			row = chunk[:i]
			chunk = chunk[i+1:]
		} else {
			row = chunk
			chunk = nil
		}
		row = bytes.TrimSuffix(row, []byte{'\r'})
		if len(row) == 0 {
			continue
		}
		fields = fields[:0]
		fields = splitFields(row, delim, fields)
		if len(fields) != len(schema) {
			return nil, fmt.Errorf("csv line %d: %d fields for %d columns", line, len(fields), len(schema))
		}
		for j, f := range fields {
			if err := appendField(b.Cols[j], f, schema[j], opts); err != nil {
				return nil, fmt.Errorf("csv line %d column %q: %w", line, schema[j].Name, err)
			}
		}
	}
	return b, nil
}

// splitFields splits one line on the delimiter, honoring double-quoted
// fields with "" escapes.
func splitFields(row []byte, delim byte, into []string) []string {
	i := 0
	for i <= len(row) {
		if i < len(row) && row[i] == '"' {
			// Quoted field.
			var sb strings.Builder
			i++
			for i < len(row) {
				if row[i] == '"' {
					if i+1 < len(row) && row[i+1] == '"' {
						sb.WriteByte('"')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(row[i])
				i++
			}
			into = append(into, sb.String())
			if i < len(row) && row[i] == delim {
				i++
				continue
			}
			break
		}
		end := bytes.IndexByte(row[i:], delim)
		if end < 0 {
			into = append(into, string(row[i:]))
			break
		}
		into = append(into, string(row[i:i+end]))
		i += end + 1
		if i == len(row) {
			// Trailing delimiter: one final empty field.
			into = append(into, "")
			break
		}
	}
	return into
}

func appendField(col *types.Column, field string, info types.ColumnInfo, opts Options) error {
	if field == "" || (opts.NullToken != "" && field == opts.NullToken) {
		col.AppendNull()
		return nil
	}
	switch info.Type {
	case types.Int64:
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return fmt.Errorf("bad integer %q", field)
		}
		col.AppendInt(v)
	case types.Float64:
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return fmt.Errorf("bad float %q", field)
		}
		col.AppendFloat(v)
	case types.Bool:
		switch strings.ToLower(field) {
		case "true", "t", "1", "yes":
			col.AppendBool(true)
		case "false", "f", "0", "no":
			col.AppendBool(false)
		default:
			return fmt.Errorf("bad boolean %q", field)
		}
	default:
		col.AppendString(field)
	}
	return nil
}
