// Package catalog defines the interfaces through which the planner and
// executor see stored relations, decoupling them from the storage engine.
package catalog

import (
	"fmt"

	"lambdadb/internal/types"
)

// Relation is a readable stored relation at some snapshot.
type Relation interface {
	// Name returns the table name.
	Name() string
	// Schema returns the column layout.
	Schema() types.Schema
	// NumRows returns the number of rows visible at the given snapshot.
	// It is used for cardinality estimation and may be approximate.
	NumRows(snapshot uint64) int
	// Scan calls yield with batches of rows visible at snapshot, in row
	// order, until exhausted or yield returns an error.
	Scan(snapshot uint64, yield func(*types.Batch) error) error
	// ScanRange behaves like Scan but only covers physical rows in
	// [lo, hi); it exists so parallel scans can partition a table into
	// morsels.
	ScanRange(snapshot uint64, lo, hi int, yield func(*types.Batch) error) error
	// PhysicalRows returns the physical row count (including rows not
	// visible at a given snapshot) for morsel partitioning.
	PhysicalRows() int
}

// IndexInfo describes one secondary index for planning and introspection.
type IndexInfo struct {
	Name    string
	Column  string
	Kind    string // "HASH" or "ORDERED"
	Keys    int    // distinct keys indexed (approximate between merges)
	Entries int    // postings: physical rows indexed, dead versions included
}

// IndexedRelation is a Relation whose backing store maintains secondary
// indexes. Probes yield batches of rows visible at snapshot whose indexed
// column satisfies the probe, in physical row order; a nil bound pointer
// leaves that side of a range unbounded.
type IndexedRelation interface {
	Relation
	Indexes() []IndexInfo
	IndexLookupEq(index string, key types.Value, snapshot uint64, yield func(*types.Batch) error) error
	IndexLookupRange(index string, lo, hi *types.Value, loInc, hiInc bool, snapshot uint64, yield func(*types.Batch) error) error
}

// Catalog resolves table names to relations.
type Catalog interface {
	Resolve(name string) (Relation, error)
}

// ErrNoSuchTable is returned by Resolve for unknown tables.
type ErrNoSuchTable struct{ Name string }

func (e *ErrNoSuchTable) Error() string {
	return fmt.Sprintf("table %q does not exist", e.Name)
}
