package types

import "fmt"

// Column is a typed vector of values. Exactly one of the data slices is
// populated, selected by T. Nulls is nil when the column contains no NULLs;
// otherwise it has one entry per row.
type Column struct {
	T      Type
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  []bool
}

// NewColumn returns an empty column of type t with capacity cap.
func NewColumn(t Type, capacity int) *Column {
	c := &Column{T: t}
	switch t {
	case Int64:
		c.Ints = make([]int64, 0, capacity)
	case Float64:
		c.Floats = make([]float64, 0, capacity)
	case String:
		c.Strs = make([]string, 0, capacity)
	case Bool:
		c.Bools = make([]bool, 0, capacity)
	}
	return c
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	switch c.T {
	case Int64:
		return len(c.Ints)
	case Float64:
		return len(c.Floats)
	case String:
		return len(c.Strs)
	case Bool:
		return len(c.Bools)
	}
	// Unknown-typed columns (all-NULL literals) track length through the
	// null bitmap only.
	return len(c.Nulls)
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool {
	return c.Nulls != nil && c.Nulls[i]
}

// Value returns row i as a scalar Value.
func (c *Column) Value(i int) Value {
	if c.IsNull(i) {
		return NewNull(c.T)
	}
	switch c.T {
	case Int64:
		return NewInt(c.Ints[i])
	case Float64:
		return NewFloat(c.Floats[i])
	case String:
		return NewString(c.Strs[i])
	case Bool:
		return NewBool(c.Bools[i])
	}
	return Value{}
}

// Append adds a value to the column. The value must match the column type
// (numeric widening from Int64 to Float64 is performed).
func (c *Column) Append(v Value) {
	if v.Null {
		c.AppendNull()
		return
	}
	c.growNulls(false)
	switch c.T {
	case Int64:
		c.Ints = append(c.Ints, v.AsInt())
	case Float64:
		c.Floats = append(c.Floats, v.AsFloat())
	case String:
		c.Strs = append(c.Strs, v.S)
	case Bool:
		c.Bools = append(c.Bools, v.B)
	}
}

// AppendNull adds a NULL row.
func (c *Column) AppendNull() {
	c.growNulls(true)
	switch c.T {
	case Int64:
		c.Ints = append(c.Ints, 0)
	case Float64:
		c.Floats = append(c.Floats, 0)
	case String:
		c.Strs = append(c.Strs, "")
	case Bool:
		c.Bools = append(c.Bools, false)
	}
}

// AppendInt appends a non-null int64 (column must be Int64).
func (c *Column) AppendInt(v int64) {
	c.growNulls(false)
	c.Ints = append(c.Ints, v)
}

// AppendFloat appends a non-null float64 (column must be Float64).
func (c *Column) AppendFloat(v float64) {
	c.growNulls(false)
	c.Floats = append(c.Floats, v)
}

// AppendString appends a non-null string (column must be String).
func (c *Column) AppendString(v string) {
	c.growNulls(false)
	c.Strs = append(c.Strs, v)
}

// AppendBool appends a non-null bool (column must be Bool).
func (c *Column) AppendBool(v bool) {
	c.growNulls(false)
	c.Bools = append(c.Bools, v)
}

func (c *Column) growNulls(null bool) {
	if c.Nulls == nil {
		if !null {
			return
		}
		c.Nulls = make([]bool, c.Len(), c.Len()+1)
	}
	c.Nulls = append(c.Nulls, null)
}

// Slice returns a view of rows [lo, hi). The returned column shares storage
// with c; it must not be appended to.
func (c *Column) Slice(lo, hi int) *Column {
	out := &Column{T: c.T}
	switch c.T {
	case Int64:
		out.Ints = c.Ints[lo:hi]
	case Float64:
		out.Floats = c.Floats[lo:hi]
	case String:
		out.Strs = c.Strs[lo:hi]
	case Bool:
		out.Bools = c.Bools[lo:hi]
	}
	if c.Nulls != nil {
		out.Nulls = c.Nulls[lo:hi]
	}
	return out
}

// Gather returns a new column containing the rows of c selected by idx.
// The type dispatch happens once, outside the copy loop.
func (c *Column) Gather(idx []int) *Column {
	out := &Column{T: c.T}
	switch c.T {
	case Int64:
		out.Ints = make([]int64, len(idx))
		for o, i := range idx {
			out.Ints[o] = c.Ints[i]
		}
	case Float64:
		out.Floats = make([]float64, len(idx))
		for o, i := range idx {
			out.Floats[o] = c.Floats[i]
		}
	case String:
		out.Strs = make([]string, len(idx))
		for o, i := range idx {
			out.Strs[o] = c.Strs[i]
		}
	case Bool:
		out.Bools = make([]bool, len(idx))
		for o, i := range idx {
			out.Bools[o] = c.Bools[i]
		}
	}
	if c.Nulls != nil {
		out.Nulls = make([]bool, len(idx))
		for o, i := range idx {
			out.Nulls[o] = c.Nulls[i]
		}
	}
	return out
}

// AppendColumn appends all rows of o (which must have the same type) to c,
// bulk-copying the backing slices.
func (c *Column) AppendColumn(o *Column) {
	oldLen := c.Len()
	n := o.Len()
	switch c.T {
	case Int64:
		c.Ints = append(c.Ints, o.Ints...)
	case Float64:
		c.Floats = append(c.Floats, o.Floats...)
	case String:
		c.Strs = append(c.Strs, o.Strs...)
	case Bool:
		c.Bools = append(c.Bools, o.Bools...)
	}
	switch {
	case c.Nulls == nil && o.Nulls == nil:
		// No bitmap needed.
	case c.Nulls == nil:
		c.Nulls = make([]bool, oldLen, oldLen+n)
		c.Nulls = append(c.Nulls, o.Nulls...)
	case o.Nulls == nil:
		c.Nulls = append(c.Nulls, make([]bool, n)...)
	default:
		c.Nulls = append(c.Nulls, o.Nulls...)
	}
}

// AppendRepeat appends n copies of v.
func (c *Column) AppendRepeat(v Value, n int) {
	if v.Null {
		for i := 0; i < n; i++ {
			c.AppendNull()
		}
		return
	}
	oldLen := c.Len()
	switch c.T {
	case Int64:
		x := v.AsInt()
		for i := 0; i < n; i++ {
			c.Ints = append(c.Ints, x)
		}
	case Float64:
		x := v.AsFloat()
		for i := 0; i < n; i++ {
			c.Floats = append(c.Floats, x)
		}
	case String:
		for i := 0; i < n; i++ {
			c.Strs = append(c.Strs, v.S)
		}
	case Bool:
		for i := 0; i < n; i++ {
			c.Bools = append(c.Bools, v.B)
		}
	}
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, make([]bool, n)...)
		_ = oldLen
	}
}

// ConstColumn returns a column of n copies of v.
func ConstColumn(v Value, n int) *Column {
	c := NewColumn(v.T, n)
	for i := 0; i < n; i++ {
		c.Append(v)
	}
	return c
}

// ColumnInfo describes one column of a schema.
type ColumnInfo struct {
	Name string
	Type Type
}

// Schema is an ordered list of column descriptions.
type Schema []ColumnInfo

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Equal reports whether two schemas have identical names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name TYPE, ...)".
func (s Schema) String() string {
	out := "("
	for i, c := range s {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %s", c.Name, c.Type)
	}
	return out + ")"
}

// Batch is a horizontal slice of rows flowing between operators.
// All columns have the same length.
type Batch struct {
	Schema Schema
	Cols   []*Column
}

// BatchSize is the default number of rows per batch.
const BatchSize = 1024

// NewBatch returns an empty batch with one empty column per schema entry.
func NewBatch(schema Schema) *Batch {
	b := &Batch{Schema: schema, Cols: make([]*Column, len(schema))}
	for i, c := range schema {
		b.Cols[i] = NewColumn(c.Type, BatchSize)
	}
	return b
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Row materializes row i as a slice of scalar values.
func (b *Batch) Row(i int) []Value {
	out := make([]Value, len(b.Cols))
	for j, c := range b.Cols {
		out[j] = c.Value(i)
	}
	return out
}

// AppendRow appends a row of scalar values.
func (b *Batch) AppendRow(row []Value) {
	for j, c := range b.Cols {
		c.Append(row[j])
	}
}

// Gather returns a new batch with rows selected by idx.
func (b *Batch) Gather(idx []int) *Batch {
	out := &Batch{Schema: b.Schema, Cols: make([]*Column, len(b.Cols))}
	for j, c := range b.Cols {
		out.Cols[j] = c.Gather(idx)
	}
	return out
}

// Slice returns a view batch of rows [lo, hi).
func (b *Batch) Slice(lo, hi int) *Batch {
	out := &Batch{Schema: b.Schema, Cols: make([]*Column, len(b.Cols))}
	for j, c := range b.Cols {
		out.Cols[j] = c.Slice(lo, hi)
	}
	return out
}
