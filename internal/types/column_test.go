package types

import (
	"testing"
	"testing/quick"
)

func TestColumnAppendAndValue(t *testing.T) {
	c := NewColumn(Int64, 4)
	c.AppendInt(10)
	c.Append(NewInt(20))
	c.AppendNull()
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if v := c.Value(0); v.I != 10 {
		t.Errorf("Value(0) = %v", v)
	}
	if v := c.Value(1); v.I != 20 {
		t.Errorf("Value(1) = %v", v)
	}
	if !c.Value(2).Null {
		t.Error("Value(2) should be NULL")
	}
	if c.IsNull(0) || !c.IsNull(2) {
		t.Error("IsNull mismatch")
	}
}

func TestColumnNullBitmapLazy(t *testing.T) {
	c := NewColumn(Float64, 4)
	c.AppendFloat(1)
	c.AppendFloat(2)
	if c.Nulls != nil {
		t.Error("nulls bitmap should be nil before first NULL")
	}
	c.AppendNull()
	if c.Nulls == nil || len(c.Nulls) != 3 {
		t.Fatalf("nulls bitmap = %v", c.Nulls)
	}
	if c.Nulls[0] || c.Nulls[1] || !c.Nulls[2] {
		t.Errorf("nulls content = %v", c.Nulls)
	}
}

func TestColumnWideningAppend(t *testing.T) {
	c := NewColumn(Float64, 2)
	c.Append(NewInt(3)) // int appended into float column widens
	if c.Floats[0] != 3.0 {
		t.Errorf("widening append got %v", c.Floats[0])
	}
}

func TestColumnSliceAndGather(t *testing.T) {
	c := NewColumn(String, 5)
	for _, s := range []string{"a", "b", "c", "d", "e"} {
		c.AppendString(s)
	}
	s := c.Slice(1, 4)
	if s.Len() != 3 || s.Strs[0] != "b" || s.Strs[2] != "d" {
		t.Errorf("Slice = %v", s.Strs)
	}
	g := c.Gather([]int{4, 0, 2})
	if g.Len() != 3 || g.Strs[0] != "e" || g.Strs[1] != "a" || g.Strs[2] != "c" {
		t.Errorf("Gather = %v", g.Strs)
	}
}

func TestColumnGatherPreservesNulls(t *testing.T) {
	c := NewColumn(Int64, 3)
	c.AppendInt(1)
	c.AppendNull()
	c.AppendInt(3)
	g := c.Gather([]int{1, 2})
	if !g.IsNull(0) || g.IsNull(1) {
		t.Errorf("gathered nulls wrong: %v", g.Nulls)
	}
	if g.Ints[1] != 3 {
		t.Errorf("gathered value wrong: %v", g.Ints)
	}
}

func TestAppendColumn(t *testing.T) {
	a := NewColumn(Bool, 2)
	a.AppendBool(true)
	b := NewColumn(Bool, 2)
	b.AppendBool(false)
	b.AppendNull()
	a.AppendColumn(b)
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	if a.Bools[0] != true || a.Bools[1] != false || !a.IsNull(2) {
		t.Errorf("AppendColumn content wrong: %v %v", a.Bools, a.Nulls)
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := Schema{{"x", Int64}, {"y", Float64}}
	if s.IndexOf("y") != 1 || s.IndexOf("x") != 0 || s.IndexOf("z") != -1 {
		t.Error("IndexOf wrong")
	}
	if !s.Equal(Schema{{"x", Int64}, {"y", Float64}}) {
		t.Error("Equal should hold")
	}
	if s.Equal(Schema{{"x", Int64}}) {
		t.Error("Equal length mismatch")
	}
	if got := s.String(); got != "(x BIGINT, y DOUBLE)" {
		t.Errorf("String = %q", got)
	}
}

func TestBatchRowRoundTrip(t *testing.T) {
	schema := Schema{{"a", Int64}, {"b", String}}
	b := NewBatch(schema)
	b.AppendRow([]Value{NewInt(1), NewString("one")})
	b.AppendRow([]Value{NewNull(Int64), NewString("two")})
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	r := b.Row(1)
	if !r[0].Null || r[1].S != "two" {
		t.Errorf("Row(1) = %v", r)
	}
}

func TestBatchGatherSlice(t *testing.T) {
	schema := Schema{{"a", Int64}}
	b := NewBatch(schema)
	for i := int64(0); i < 10; i++ {
		b.AppendRow([]Value{NewInt(i)})
	}
	g := b.Gather([]int{9, 3})
	if g.Len() != 2 || g.Cols[0].Ints[0] != 9 || g.Cols[0].Ints[1] != 3 {
		t.Errorf("Gather = %v", g.Cols[0].Ints)
	}
	s := b.Slice(2, 5)
	if s.Len() != 3 || s.Cols[0].Ints[0] != 2 {
		t.Errorf("Slice = %v", s.Cols[0].Ints)
	}
}

func TestColumnRoundTripProperty(t *testing.T) {
	// Property: appending values then reading them back is identity.
	f := func(vals []int64) bool {
		c := NewColumn(Int64, len(vals))
		for _, v := range vals {
			c.AppendInt(v)
		}
		if c.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			if c.Value(i).I != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstColumn(t *testing.T) {
	c := ConstColumn(NewFloat(2.5), 4)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i := 0; i < 4; i++ {
		if c.Floats[i] != 2.5 {
			t.Errorf("ConstColumn[%d] = %v", i, c.Floats[i])
		}
	}
	n := ConstColumn(NewNull(String), 2)
	if !n.IsNull(0) || !n.IsNull(1) {
		t.Error("ConstColumn of NULL should be all null")
	}
}
