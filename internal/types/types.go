// Package types provides the typed value and column-vector layer shared by
// the storage engine, expression engine, and physical operators.
//
// The engine is columnar: data flows between operators in Batches of typed
// Columns. Scalar Values exist for constants, parameters, and row-oriented
// result consumption at the client boundary.
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Type identifies a SQL value type.
type Type uint8

// Supported SQL types.
const (
	Unknown Type = iota
	Int64        // INTEGER, BIGINT
	Float64      // FLOAT, DOUBLE
	String       // VARCHAR, TEXT
	Bool         // BOOLEAN
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	default:
		return "UNKNOWN"
	}
}

// IsNumeric reports whether t is an arithmetic type.
func (t Type) IsNumeric() bool { return t == Int64 || t == Float64 }

// Value is a scalar SQL value. The active field is determined by T; a Null
// value carries its type but no payload.
type Value struct {
	T    Type
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// Convenience constructors.

// NewInt returns an Int64 value.
func NewInt(v int64) Value { return Value{T: Int64, I: v} }

// NewFloat returns a Float64 value.
func NewFloat(v float64) Value { return Value{T: Float64, F: v} }

// NewString returns a String value.
func NewString(v string) Value { return Value{T: String, S: v} }

// NewBool returns a Bool value.
func NewBool(v bool) Value { return Value{T: Bool, B: v} }

// NewNull returns a typed NULL.
func NewNull(t Type) Value { return Value{T: t, Null: true} }

// AsFloat converts a numeric value to float64. Strings and bools are not
// converted; the caller must type-check first.
func (v Value) AsFloat() float64 {
	if v.T == Int64 {
		return float64(v.I)
	}
	return v.F
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() int64 {
	if v.T == Float64 {
		return int64(v.F)
	}
	return v.I
}

// String renders the value as it would appear in query output.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.T {
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal reports SQL equality between two values of the same type.
// NULL is not equal to anything, including NULL (SQL three-valued logic is
// handled by the expression engine; Equal is the raw comparison).
func (v Value) Equal(o Value) bool {
	if v.Null || o.Null {
		return false
	}
	if v.T != o.T {
		// Cross numeric comparison.
		if v.T.IsNumeric() && o.T.IsNumeric() {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.T {
	case Int64:
		return v.I == o.I
	case Float64:
		return v.F == o.F
	case String:
		return v.S == o.S
	case Bool:
		return v.B == o.B
	}
	return false
}

// Compare returns -1, 0, or +1 ordering v relative to o. NULLs sort first.
// Cross numeric comparisons are widened to float64.
func (v Value) Compare(o Value) int {
	if v.Null && o.Null {
		return 0
	}
	if v.Null {
		return -1
	}
	if o.Null {
		return 1
	}
	if v.T != o.T && v.T.IsNumeric() && o.T.IsNumeric() {
		return cmpFloat(v.AsFloat(), o.AsFloat())
	}
	switch v.T {
	case Int64:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case Float64:
		return cmpFloat(v.F, o.F)
	case String:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	case Bool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		}
		return 0
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Hash returns a 64-bit hash of the value for hash joins and aggregation.
// Numerically equal int64 and float64 values hash identically so that
// cross-type joins group correctly.
func (v Value) Hash() uint64 {
	if v.Null {
		return 0x9e3779b97f4a7c15
	}
	switch v.T {
	case Int64:
		// Hash integral values through the float path when they are exactly
		// representable, so 1 and 1.0 collide as SQL equality requires.
		return hashFloat(float64(v.I))
	case Float64:
		return hashFloat(v.F)
	case String:
		return HashString(v.S)
	case Bool:
		if v.B {
			return hash64(1)
		}
		return hash64(0)
	}
	return 0
}

func hashFloat(f float64) uint64 {
	if f == 0 {
		f = 0 // normalize -0.0
	}
	return hash64(math.Float64bits(f))
}

// hash64 is a strong 64-bit integer mix (splitmix64 finalizer).
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashString hashes a string with FNV-1a followed by a mix step.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return hash64(h)
}

// HashCombine mixes a value hash into an accumulated row hash.
func HashCombine(acc, h uint64) uint64 {
	acc ^= h + 0x9e3779b97f4a7c15 + (acc << 6) + (acc >> 2)
	return acc
}

// ParseType maps a SQL type name to a Type.
func ParseType(name string) (Type, error) {
	switch name {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "INT4", "INT8":
		return Int64, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL", "FLOAT8", "DOUBLE PRECISION":
		return Float64, nil
	case "VARCHAR", "TEXT", "CHAR", "STRING":
		return String, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	}
	return Unknown, fmt.Errorf("unknown type %q", name)
}
