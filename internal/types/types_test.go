package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewNull(Int64), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewNull(Int64), NewInt(0), -1},
		{NewInt(0), NewNull(Int64), 1},
		{NewNull(Int64), NewNull(Float64), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !NewInt(3).Equal(NewFloat(3.0)) {
		t.Error("3 should equal 3.0")
	}
	if NewInt(3).Equal(NewFloat(3.5)) {
		t.Error("3 should not equal 3.5")
	}
	if NewNull(Int64).Equal(NewNull(Int64)) {
		t.Error("NULL must not equal NULL")
	}
	if NewString("1").Equal(NewInt(1)) {
		t.Error("'1' must not equal 1")
	}
}

func TestHashIntFloatAgree(t *testing.T) {
	// SQL equality across int64/float64 requires identical hashes.
	f := func(x int32) bool {
		return NewInt(int64(x)).Hash() == NewFloat(float64(x)).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashNegativeZero(t *testing.T) {
	if NewFloat(0.0).Hash() != NewFloat(math.Copysign(0, -1)).Hash() {
		t.Error("0.0 and -0.0 must hash identically")
	}
}

func TestHashDistribution(t *testing.T) {
	// Property: distinct small ints should essentially never collide.
	seen := map[uint64]int64{}
	for i := int64(0); i < 10000; i++ {
		h := NewInt(i).Hash()
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash collision between %d and %d", prev, i)
		}
		seen[h] = i
	}
}

func TestHashCombineOrderSensitive(t *testing.T) {
	a, b := NewInt(1).Hash(), NewInt(2).Hash()
	h1 := HashCombine(HashCombine(0, a), b)
	h2 := HashCombine(HashCombine(0, b), a)
	if h1 == h2 {
		t.Error("HashCombine should be order sensitive")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := NewFloat(a), NewFloat(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"INTEGER": Int64, "BIGINT": Int64, "INT": Int64,
		"FLOAT": Float64, "DOUBLE": Float64, "REAL": Float64,
		"VARCHAR": String, "TEXT": String,
		"BOOLEAN": Bool, "BOOL": Bool,
	}
	for name, want := range cases {
		got, err := ParseType(name)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseType(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("ParseType(BLOB) should fail")
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if NewInt(3).AsFloat() != 3.0 {
		t.Error("AsFloat of int")
	}
	if NewFloat(3.9).AsInt() != 3 {
		t.Error("AsInt truncates")
	}
	if NewFloat(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat of float")
	}
	if NewInt(7).AsInt() != 7 {
		t.Error("AsInt of int")
	}
}
