package graph

import (
	"testing"
	"testing/quick"
)

func TestBuildSimple(t *testing.T) {
	// 1→3, 2→3, 3→1 with sparse original ids.
	g, err := Build([]int64{10, 20, 30}, []int64{30, 30, 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Dense ids assigned in sorted original order: 10→0, 20→1, 30→2.
	if g.OrigIDs[0] != 10 || g.OrigIDs[1] != 20 || g.OrigIDs[2] != 30 {
		t.Fatalf("orig ids = %v", g.OrigIDs)
	}
	if g.OutDegree(0) != 1 || g.OutDegree(1) != 1 || g.OutDegree(2) != 1 {
		t.Errorf("out degrees = %d %d %d", g.OutDegree(0), g.OutDegree(1), g.OutDegree(2))
	}
	if n := g.Neighbors(0); len(n) != 1 || n[0] != 2 {
		t.Errorf("neighbors(0) = %v", n)
	}
	if n := g.Neighbors(2); len(n) != 1 || n[0] != 0 {
		t.Errorf("neighbors(2) = %v", n)
	}
}

func TestBuildIncludesTargetOnlyVertices(t *testing.T) {
	g, err := Build([]int64{1}, []int64{99})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 {
		t.Fatalf("N = %d, want 2", g.N)
	}
	if g.OutDegree(1) != 0 {
		t.Errorf("sink should have out-degree 0")
	}
}

func TestBuildLengthMismatch(t *testing.T) {
	if _, err := Build([]int64{1, 2}, []int64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestBuildEmpty(t *testing.T) {
	g, err := Build(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph: N=%d edges=%d", g.N, g.NumEdges())
	}
}

func TestBuildParallelEdgesAndSelfLoops(t *testing.T) {
	g, err := Build([]int64{1, 1, 2}, []int64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Errorf("parallel edges must be kept: %d", g.NumEdges())
	}
	if g.OutDegree(0) != 2 {
		t.Errorf("out degree with parallel edge = %d", g.OutDegree(0))
	}
	if g.OutDegree(1) != 1 { // self loop 2→2
		t.Errorf("self loop out degree = %d", g.OutDegree(1))
	}
}

func TestTransposeReversesEdges(t *testing.T) {
	g, err := Build([]int64{0, 0, 1}, []int64{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Transpose()
	if tr.N != g.N || tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose size mismatch")
	}
	// In-degree of 2 in g is out-degree of 2 in transpose.
	if tr.OutDegree(2) != 2 {
		t.Errorf("transpose out-degree(2) = %d, want 2", tr.OutDegree(2))
	}
	if tr.OutDegree(0) != 0 {
		t.Errorf("transpose out-degree(0) = %d, want 0", tr.OutDegree(0))
	}
}

func TestTransposeInvolution(t *testing.T) {
	// Property: transposing twice restores edge multiset per vertex.
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var src, dst []int64
		for i := 0; i+1 < len(raw); i += 2 {
			src = append(src, int64(raw[i]%16))
			dst = append(dst, int64(raw[i+1]%16))
		}
		g, err := Build(src, dst)
		if err != nil {
			return false
		}
		back := g.Transpose().Transpose()
		if back.N != g.N || back.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.N; v++ {
			a, b := g.Neighbors(v), back.Neighbors(v)
			if len(a) != len(b) {
				return false
			}
			counts := map[int32]int{}
			for _, x := range a {
				counts[x]++
			}
			for _, x := range b {
				counts[x]--
			}
			for _, c := range counts {
				if c != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetsAreMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var src, dst []int64
		for i := 0; i+1 < len(raw); i += 2 {
			src = append(src, int64(raw[i]))
			dst = append(dst, int64(raw[i+1]))
		}
		g, err := Build(src, dst)
		if err != nil {
			return false
		}
		for i := 0; i < g.N; i++ {
			if g.Offsets[i] > g.Offsets[i+1] {
				return false
			}
		}
		return g.Offsets[g.N] == int64(len(g.Targets))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
