// Package graph provides the compressed sparse row (CSR) representation
// used by the PageRank physical operator (paper Section 6.3): vertices are
// re-labeled to dense internal ids for direct array indexing, and a reverse
// mapping restores the original ids after the computation.
package graph

import (
	"fmt"
	"sort"
)

// CSR is a directed graph in compressed sparse row form over dense vertex
// ids [0, N).
type CSR struct {
	// N is the number of vertices.
	N int
	// Offsets has N+1 entries; the out-neighbors of vertex v are
	// Targets[Offsets[v]:Offsets[v+1]].
	Offsets []int64
	// Targets holds the flattened adjacency lists.
	Targets []int32
	// Weights, when non-nil, holds one edge weight per Targets entry.
	Weights []float64
	// OrigIDs maps dense ids back to the original vertex ids (the paper's
	// reverse mapping operator).
	OrigIDs []int64
}

// EdgeWeights returns the weights of v's out-edges (nil when unweighted).
func (g *CSR) EdgeWeights(v int) []float64 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// OutDegree returns the out-degree of dense vertex v.
func (g *CSR) OutDegree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the out-neighbors of dense vertex v (shared storage).
func (g *CSR) Neighbors(v int) []int32 {
	return g.Targets[g.Offsets[v]:g.Offsets[v+1]]
}

// NumEdges returns the number of directed edges.
func (g *CSR) NumEdges() int { return len(g.Targets) }

// Build constructs a CSR from an edge list, re-labeling arbitrary int64
// vertex ids to dense ids. Vertices appearing only as targets are included.
// Original ids are assigned dense ids in sorted order so results are
// deterministic.
func Build(src, dst []int64) (*CSR, error) {
	return BuildWeighted(src, dst, nil)
}

// BuildWeighted is Build with optional per-edge weights (nil = unweighted);
// weights stay aligned with their edges through the relabeling.
func BuildWeighted(src, dst []int64, weights []float64) (*CSR, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: %d sources but %d destinations", len(src), len(dst))
	}
	// Collect and sort distinct ids.
	idset := make(map[int64]struct{}, len(src))
	for i := range src {
		idset[src[i]] = struct{}{}
		idset[dst[i]] = struct{}{}
	}
	orig := make([]int64, 0, len(idset))
	for id := range idset {
		orig = append(orig, id)
	}
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	dense := make(map[int64]int32, len(orig))
	for i, id := range orig {
		dense[id] = int32(i)
	}

	n := len(orig)
	if int64(len(src)) > int64(^uint32(0)>>1) {
		return nil, fmt.Errorf("graph: too many edges (%d)", len(src))
	}

	// Counting pass.
	offsets := make([]int64, n+1)
	for _, s := range src {
		offsets[dense[s]+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	if weights != nil && len(weights) != len(src) {
		return nil, fmt.Errorf("graph: %d weights for %d edges", len(weights), len(src))
	}

	// Fill pass.
	targets := make([]int32, len(src))
	var outW []float64
	if weights != nil {
		outW = make([]float64, len(src))
	}
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for i := range src {
		s := dense[src[i]]
		targets[cursor[s]] = dense[dst[i]]
		if weights != nil {
			outW[cursor[s]] = weights[i]
		}
		cursor[s]++
	}
	return &CSR{N: n, Offsets: offsets, Targets: targets, Weights: outW, OrigIDs: orig}, nil
}

// Transpose returns the reverse graph (in-edges become out-edges); the
// pull-based PageRank kernel iterates over incoming edges. Edge weights
// travel with their edges.
func (g *CSR) Transpose() *CSR {
	offsets := make([]int64, g.N+1)
	for _, t := range g.Targets {
		offsets[t+1]++
	}
	for i := 0; i < g.N; i++ {
		offsets[i+1] += offsets[i]
	}
	targets := make([]int32, len(g.Targets))
	var outW []float64
	if g.Weights != nil {
		outW = make([]float64, len(g.Targets))
	}
	cursor := make([]int64, g.N)
	copy(cursor, offsets[:g.N])
	for v := 0; v < g.N; v++ {
		ws := g.EdgeWeights(v)
		for i, t := range g.Neighbors(v) {
			targets[cursor[t]] = int32(v)
			if outW != nil {
				outW[cursor[t]] = ws[i]
			}
			cursor[t]++
		}
	}
	return &CSR{N: g.N, Offsets: offsets, Targets: targets, Weights: outW, OrigIDs: g.OrigIDs}
}
