GO ?= go

.PHONY: check vet build test race bench overhead

## check: everything CI runs — vet, build, full tests, race on the executor, telemetry-overhead smoke
check: vet build test race overhead

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the parallel executor, engine, and fault-injection registry under the race detector
race:
	$(GO) test -race ./internal/exec/ ./internal/engine/ ./internal/faultinject/

## overhead: assert the disarmed telemetry path adds <2% to BenchmarkVectorizedFilterAgg
overhead:
	LAMBDADB_OVERHEAD_SMOKE=1 $(GO) test ./internal/exec/ -run TestTelemetryOverheadSmoke -v

## bench: refresh the parallel-operator scaling baseline (see BENCH_exec.json)
bench:
	$(GO) test ./internal/exec/ -run xxx -bench 'BenchmarkParallel(Join|Sort|TopK|Agg)Scaling' -benchtime 3x
