GO ?= go

.PHONY: check vet build test race bench

## check: everything CI runs — vet, build, full tests, race on the executor
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the parallel executor, engine, and fault-injection registry under the race detector
race:
	$(GO) test -race ./internal/exec/ ./internal/engine/ ./internal/faultinject/

## bench: refresh the parallel-operator scaling baseline (see BENCH_exec.json)
bench:
	$(GO) test ./internal/exec/ -run xxx -bench 'BenchmarkParallel(Join|Sort|TopK|Agg)Scaling' -benchtime 3x
