GO ?= go

.PHONY: check lint vet build test race bench overhead server-smoke crash chaos-repl chaos-cluster bench-wal bench-obs fuzz-smoke bench-prepared

## check: everything CI runs except server-smoke — lint, build, full tests, race, telemetry-overhead smoke
check: lint build test race overhead

## lint: go vet always; staticcheck when installed (CI pins and installs it; locally it is optional)
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the concurrent subsystems — executor, engine, storage, network server, WAL, replication — under the race detector
race:
	$(GO) test -race ./internal/exec/ ./internal/engine/ ./internal/faultinject/ ./internal/storage/ ./internal/server/ ./internal/wal/ ./internal/repl/ ./internal/cluster/ ./internal/retry/

## overhead: assert the disarmed operator-stats path AND the armed histogram path each add <2% to the vectorized filter+agg workload
overhead:
	LAMBDADB_OVERHEAD_SMOKE=1 $(GO) test ./internal/exec/ -run TestTelemetryOverheadSmoke -v
	LAMBDADB_OVERHEAD_SMOKE=1 $(GO) test ./internal/engine/ -run TestObsOverheadSmoke -count=1 -v

## server-smoke: build lambdaserver + sqlshell, stress over TCP, scrape /metrics + /healthz + /readyz (incl. replica gating), SIGTERM drain must exit 0
server-smoke:
	LAMBDADB_SERVER_SMOKE=1 $(GO) test ./internal/server/ -run 'TestServerBinarySmoke|TestReplicaReadyzSmoke' -count=1 -v

## bench-obs: refresh the observability cost baseline (see BENCH_obs.json): histogram record/snapshot and a full /metrics render
bench-obs:
	$(GO) test ./internal/telemetry/ -run xxx -bench 'BenchmarkHistogram' -benchtime 2s
	$(GO) test ./internal/obs/ -run xxx -bench 'BenchmarkRenderMetrics' -benchtime 2s

## bench: refresh the parallel-operator scaling baseline (see BENCH_exec.json)
bench:
	$(GO) test ./internal/exec/ -run xxx -bench 'BenchmarkParallel(Join|Sort|TopK|Agg)Scaling' -benchtime 3x

## crash: kill -9 a durable engine repeatedly, verify zero acked-commit loss and no phantom effects
crash:
	LAMBDADB_CRASH=1 $(GO) test ./internal/wal/ -run TestCrashRecovery -count=1 -v

## chaos-repl: kill -9 primary/replica and sever streams repeatedly; verify zero acked-commit loss, convergence, resume vs resync, and promotion
chaos-repl:
	LAMBDADB_CHAOS_REPL=1 $(GO) test ./internal/repl/ -run TestReplChaos -count=1 -timeout 5m -v

## chaos-cluster: 3-node cluster behind the router; kill -9 and SIGSTOP the primary under write load, verify automatic failover with epoch fencing, zero acked-commit loss, single writer per epoch, and continuous reads
chaos-cluster:
	LAMBDADB_CHAOS_CLUSTER=1 $(GO) test ./internal/cluster/ -run TestClusterChaos -count=1 -timeout 5m -v

## bench-wal: refresh the group-commit baseline (see BENCH_wal.json); asserts < 1 fsync per commit under concurrency
bench-wal:
	LAMBDADB_WAL_BENCH=1 $(GO) test ./internal/wal/ -run TestGroupCommitBench -count=1 -v

## fuzz-smoke: 30s of native Go fuzzing against each SQL front-end target (go test allows one -fuzz per invocation)
fuzz-smoke:
	$(GO) test ./internal/sql/ -run xxx -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/sql/ -run xxx -fuzz FuzzSplitStatements -fuzztime 30s

## bench-prepared: refresh the prepared-statement baseline (see BENCH_prepared.json); asserts the plan-cached point-query path is >= 2x faster than lex+parse+plan per statement
bench-prepared:
	LAMBDADB_PREPARED_BENCH=1 $(GO) test ./internal/engine/ -run TestPreparedBench -count=1 -v
