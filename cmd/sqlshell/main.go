// Command sqlshell is an interactive SQL shell over the main-memory
// engine, with the paper's extensions available: ITERATE, KMEANS,
// PAGERANK, NAIVE_BAYES_TRAIN/PREDICT, and λ-expressions.
//
// Usage:
//
//	sqlshell                        # interactive, embedded engine
//	sqlshell -f file.sql            # execute a script, print results
//	sqlshell -connect localhost:5433  # talk to a running lambdaserver
//
// Meta commands: \q quit, \d list tables, \d <table> show columns +
// indexes + ANALYZE statistics (works over -connect too), \explain
// SELECT ... show the optimized plan, \timing toggle per-statement
// timing, \stats show the per-operator stats of the last statement,
// \replication show replication role and progress (works over -connect),
// \metrics show engine counters and latency percentiles, \health probe a
// server's admin endpoint (-admin or \health host:port).
//
// Every statement carries a trace ID; on error the shell prints it, so the
// failure can be found again in the server's logs and system.query_log.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/exec"
	"lambdadb/internal/server/client"
	"lambdadb/internal/telemetry"
)

// interrupts routes SIGINT to the running statement: the first Ctrl-C
// cancels its context (the shell survives and prints the error), a second
// Ctrl-C — or one arriving while no statement runs — exits the shell.
type interrupts struct {
	mu      sync.Mutex
	cancel  context.CancelFunc
	pressed bool // a Ctrl-C already cancelled the current statement
}

// watch installs the SIGINT handler; call once at startup.
func (in *interrupts) watch() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	go func() {
		for range ch {
			in.mu.Lock()
			cancel, again := in.cancel, in.pressed
			in.pressed = true
			in.mu.Unlock()
			if cancel == nil || again {
				fmt.Fprintln(os.Stderr, "\ninterrupted")
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, "\ncancelling statement (Ctrl-C again to quit)")
			cancel()
		}
	}()
}

// statementContext returns a context for one statement; done must be called
// when the statement finishes.
func (in *interrupts) statementContext() (ctx context.Context, done func()) {
	ctx, cancel := context.WithCancel(context.Background())
	in.mu.Lock()
	in.cancel, in.pressed = cancel, false
	in.mu.Unlock()
	return ctx, func() {
		in.mu.Lock()
		in.cancel, in.pressed = nil, false
		in.mu.Unlock()
		cancel()
	}
}

// executor is what the shell runs statements on: a local engine.Session,
// or a remoteExec talking to a lambdaserver.
type executor interface {
	ExecContext(ctx context.Context, text string) (*engine.Result, error)
}

// remoteExec runs statements on a lambdaserver. The wire protocol cancels
// by closing the connection, so after a Ctrl-C (or any transport failure)
// the next statement transparently redials — note that also discards any
// open BEGIN, since transactions live in the server-side session.
type remoteExec struct {
	addr string
	conn *client.Conn
}

func (r *remoteExec) ExecContext(ctx context.Context, text string) (*engine.Result, error) {
	if r.conn == nil {
		c, err := client.Dial(r.addr)
		if err != nil {
			return nil, err
		}
		r.conn = c
	}
	res, err := r.conn.ExecContext(ctx, text)
	if err != nil {
		var se *client.ServerError
		if !errors.As(err, &se) {
			// Transport-level failure: the connection is dead. Drop it so
			// the next statement redials.
			r.conn.Close()
			r.conn = nil
		}
		return nil, err
	}
	return &engine.Result{
		Columns:  res.Columns,
		Types:    res.Types,
		Rows:     res.Rows,
		Affected: res.Affected,
	}, nil
}

func (r *remoteExec) close() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
}

func main() {
	var (
		file    = flag.String("f", "", "execute this SQL script instead of reading stdin")
		timing  = flag.Bool("timing", false, "print per-statement wall time")
		workers = flag.Int("workers", 0, "parallelism degree (0 = GOMAXPROCS)")
		image   = flag.String("db", "", "open this database snapshot image (see \\save)")
		dataDir = flag.String("data-dir", "", "durable data directory (write-ahead log + checkpoints); empty = in-memory")
		connect = flag.String("connect", "", "connect to a lambdaserver at host:port instead of running an embedded engine")
		admin   = flag.String("admin", "", "lambdaserver admin endpoint (host:port) for \\health")
	)
	flag.Parse()

	in := &interrupts{}
	in.watch()
	state := &shellState{timing: *timing, adminAddr: *admin}

	// Remote mode: no local engine at all; statements go over TCP.
	if *connect != "" {
		if *workers > 0 || *image != "" || *dataDir != "" {
			fmt.Fprintln(os.Stderr, "warning: -workers, -db and -data-dir configure the embedded engine and are ignored with -connect (set them on lambdaserver)")
		}
		remote := &remoteExec{addr: *connect}
		defer remote.close()
		if *file != "" {
			runScript(in, remote, *file, state)
			return
		}
		banner := fmt.Sprintf("lambdadb shell — connected to %s", *connect)
		interactive(banner, nil, nil, remote, in, state)
		return
	}

	var opts []engine.Option
	if *workers > 0 {
		opts = append(opts, engine.WithWorkers(*workers))
	}
	var db *engine.DB
	switch {
	case *dataDir != "":
		if *image != "" {
			fmt.Fprintln(os.Stderr, "-db and -data-dir are mutually exclusive")
			os.Exit(1)
		}
		var err error
		if db, err = engine.OpenDir(*dataDir, opts...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if summary, ok := db.RecoverySummary(); ok {
			fmt.Fprintf(os.Stderr, "%s: %s\n", *dataDir, summary)
		}
		defer db.Close()
	case *image != "":
		var err error
		if db, err = engine.OpenFile(*image, opts...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		db = engine.Open(opts...)
	}
	session := db.NewSession()
	defer session.Close()
	// Arm per-operator stats so \stats always has a tree to show.
	session.CollectStats(true)

	if *file != "" {
		runScript(in, session, *file, state)
		return
	}

	banner := "lambdadb shell — SQL with ITERATE, KMEANS, PAGERANK, NAIVE_BAYES_* and λ-expressions"
	interactive(banner, db, session, session, in, state)
}

// shellState holds the toggles shared between statements and meta commands.
type shellState struct {
	timing    bool
	adminAddr string // default target of \health (the -admin flag)
}

// describeTable prints a table's columns, indexes, and last-ANALYZE
// statistics. It is built on plain SQL against the table and the
// system.indexes / system.table_stats virtual tables, so it works both
// embedded and over -connect.
func describeTable(ex executor, table string) {
	run := func(text string) (*engine.Result, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return ex.ExecContext(ctx, text)
	}
	head, err := run(fmt.Sprintf(`SELECT * FROM %s LIMIT 0`, table))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Printf("Table %s\n", table)
	for i, col := range head.Columns {
		fmt.Printf("  %-16s %s\n", col, head.Types[i])
	}

	lit := strings.ReplaceAll(table, "'", "''")
	idx, err := run(fmt.Sprintf(`SELECT index_name, column_name, kind, keys, entries
		FROM system.indexes WHERE table_name = '%s' ORDER BY index_name`, lit))
	switch {
	case err != nil:
		fmt.Fprintln(os.Stderr, "error:", err)
	case len(idx.Rows) == 0:
		fmt.Println("Indexes: none")
	default:
		fmt.Println("Indexes:")
		for _, r := range idx.Rows {
			fmt.Printf("  %s ON (%s) USING %s — %d keys, %d entries\n",
				r[0].S, r[1].S, r[2].S, r[3].I, r[4].I)
		}
	}

	st, err := run(fmt.Sprintf(`SELECT column_name, row_count, null_count, ndv, min, max, hist_buckets
		FROM system.table_stats WHERE table_name = '%s' ORDER BY column_name`, lit))
	switch {
	case err != nil:
		fmt.Fprintln(os.Stderr, "error:", err)
	case len(st.Rows) == 0:
		fmt.Printf("Statistics: none (run ANALYZE %s)\n", table)
	default:
		fmt.Printf("Statistics (%d rows at last ANALYZE):\n", st.Rows[0][1].I)
		for _, r := range st.Rows {
			fmt.Printf("  %-16s ndv=%d nulls=%d min=%s max=%s hist=%d\n",
				r[0].S, r[3].I, r[2].I, r[4].S, r[5].S, r[6].I)
		}
	}
}

func runScript(in *interrupts, ex executor, path string, state *shellState) {
	script, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := runText(in, ex, string(script), state); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runText(in *interrupts, ex executor, text string, state *shellState) error {
	ctx, done := in.statementContext()
	defer done()
	// Tag the statement with a trace ID up front: on failure the same ID is
	// printed here and recorded in the server's query log and slow-query
	// log, so "what happened to my statement" is one grep away.
	traceID := telemetry.NewTraceID()
	ctx = telemetry.WithTraceID(ctx, traceID)
	start := time.Now()
	res, err := ex.ExecContext(ctx, text)
	if err != nil {
		var se *client.ServerError
		if errors.As(err, &se) && se.TraceID != "" {
			traceID = se.TraceID // trust the server's echo over our own
		}
		return fmt.Errorf("%w (trace %s)", err, traceID)
	}
	if res != nil {
		fmt.Print(res)
	}
	if state.timing {
		rows := 0
		if res != nil {
			rows = len(res.Rows) + res.Affected
		}
		fmt.Printf("time: %v (%d rows)\n", time.Since(start), rows)
	}
	return nil
}

// interactive runs the prompt loop. db and session are nil in remote mode;
// meta commands that need the local engine say so.
func interactive(banner string, db *engine.DB, session *engine.Session, ex executor, in *interrupts, state *shellState) {
	fmt.Println(banner)
	fmt.Println(`type \q to quit, \d to list tables, \d <table> for indexes and stats,`)
	fmt.Println(`\explain <select> for plans,`)
	fmt.Println(`\timing to toggle timing, \stats for the last statement's operator stats,`)
	fmt.Println(`\save <path> to snapshot the database, \checkpoint to checkpoint a`)
	fmt.Println(`durable one (-data-dir), \replication for replication status,`)
	fmt.Println(`\metrics for engine counters and latency percentiles,`)
	fmt.Println(`\prepare for this session's prepared statements and the plan cache,`)
	fmt.Println(`\health [host:port] to probe a server's admin endpoint;`)
	fmt.Println(`end statements with ;`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !metaCommand(db, session, ex, trimmed, state) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			text := buf.String()
			buf.Reset()
			if err := runText(in, ex, text, state); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		prompt()
	}
}

// metaCommand handles backslash commands; it returns false to quit.
// db and session are nil when connected to a remote server; ex always works
// (it is the remote executor in that case), so \d <table> runs everywhere.
func metaCommand(db *engine.DB, session *engine.Session, ex executor, cmd string, state *shellState) bool {
	local := func() bool {
		if db == nil {
			fmt.Fprintf(os.Stderr, "%s requires a local database (not available with -connect; query the system.* tables instead)\n", strings.Fields(cmd)[0])
			return false
		}
		return true
	}
	switch {
	case cmd == `\q` || cmd == `\quit`:
		return false
	case cmd == `\timing`:
		state.timing = !state.timing
		if state.timing {
			fmt.Println("timing on")
		} else {
			fmt.Println("timing off")
		}
	case cmd == `\stats`:
		if !local() {
			break
		}
		if st := session.LastStats(); st != nil {
			fmt.Print(exec.FormatStatsTree(st))
			fmt.Printf("peak memory: %s\n", exec.FormatBytes(session.LastPeakBytes()))
		} else {
			fmt.Println("no statement executed yet")
		}
	case cmd == `\d`:
		if !local() {
			break
		}
		names := db.Store().TableNames()
		sort.Strings(names)
		for _, n := range names {
			tbl, err := db.Store().Table(n)
			if err != nil {
				continue
			}
			fmt.Printf("%s %s (%d rows)\n", n, tbl.Schema(), tbl.NumRows(db.Store().Snapshot()))
		}
	case strings.HasPrefix(cmd, `\d `):
		describeTable(ex, strings.TrimSpace(strings.TrimPrefix(cmd, `\d `)))
	case cmd == `\checkpoint`:
		if !local() {
			break
		}
		stats, err := db.Checkpoint()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Printf("checkpoint at clock %d (%d old log segment(s) removed)\n",
				stats.Clock, stats.SegmentsRemoved)
		}
	case strings.HasPrefix(cmd, `\save `):
		if !local() {
			break
		}
		path := strings.TrimSpace(strings.TrimPrefix(cmd, `\save `))
		if err := db.Save(path); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Printf("saved snapshot to %s\n", path)
		}
	case cmd == `\replication`:
		// Plain SQL against system.replication, so it works both embedded
		// and over -connect.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := ex.ExecContext(ctx, `SELECT * FROM system.replication`)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Print(res)
		}
	case cmd == `\metrics`:
		// Plain SQL against system.metrics (counters plus histogram
		// percentile rows), so it works both embedded and over -connect.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := ex.ExecContext(ctx, `SELECT name, value FROM system.metrics`)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Print(res)
		}
	case cmd == `\prepare`:
		// PREPARE/EXECUTE themselves are plain SQL; this shows what is
		// currently prepared and what the shared plan cache holds.
		if session != nil {
			names := session.Prepared()
			sort.Strings(names)
			if len(names) == 0 {
				fmt.Println("no prepared statements in this session (PREPARE name AS ...)")
			} else {
				fmt.Printf("prepared: %s\n", strings.Join(names, ", "))
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := ex.ExecContext(ctx, `SELECT position, statement, num_params, hits FROM system.plan_cache`)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Print(res)
		}
	case cmd == `\health` || strings.HasPrefix(cmd, `\health `):
		addr := strings.TrimSpace(strings.TrimPrefix(cmd, `\health`))
		if addr == "" {
			addr = state.adminAddr
		}
		if addr == "" {
			fmt.Fprintln(os.Stderr, `\health needs an admin endpoint: pass -admin host:port or \health host:port`)
			break
		}
		probeHealth(addr)
	case strings.HasPrefix(cmd, `\explain `):
		if !local() {
			break
		}
		out, err := session.Explain(strings.TrimPrefix(cmd, `\explain `))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Print(out)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
	}
	return true
}

// probeHealth hits a lambdaserver admin endpoint's /healthz and /readyz and
// prints one line per probe, e.g. "readyz: 503 (replica lag 12 records
// exceeds the 5-record readiness bound)".
func probeHealth(addr string) {
	cl := &http.Client{Timeout: 5 * time.Second}
	for _, probe := range []string{"healthz", "readyz"} {
		resp, err := cl.Get("http://" + addr + "/" + probe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", probe, err)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		msg := strings.TrimSpace(string(body))
		if resp.StatusCode == http.StatusOK {
			fmt.Printf("%s: %d (%s)\n", probe, resp.StatusCode, msg)
		} else {
			fmt.Printf("%s: %d (%s) — not ready\n", probe, resp.StatusCode, msg)
		}
	}
}
