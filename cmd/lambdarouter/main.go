// Command lambdarouter fronts a lambdadb cluster: clients connect to it
// with the ordinary wire protocol (sqlshell -connect, the Go client) and
// the router does the rest — writes go to the current primary, reads
// spread across lag-healthy replicas with read-your-writes preserved, and
// when the primary dies the router promotes the most-caught-up replica
// under a freshly fenced epoch and re-points the survivors.
//
// Usage:
//
//	lambdarouter -listen :5440 -nodes 127.0.0.1:5433,127.0.0.1:5434,127.0.0.1:5435
//
// The optional -ready-urls list (parallel to -nodes) adds each node's
// admin /readyz to the health check; -ready-max-lag rotates replicas whose
// commit-clock lag exceeds the bound out of read routing. -admin-addr
// serves the router's own /metrics and /healthz.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lambdadb/internal/cluster"
	"lambdadb/internal/obs"
	"lambdadb/internal/telemetry"
)

func main() {
	var (
		listen      = flag.String("listen", ":5440", "TCP listen address for client connections")
		nodes       = flag.String("nodes", "", "comma-separated wire addresses of every cluster node (required)")
		readyURLs   = flag.String("ready-urls", "", "comma-separated admin /readyz URLs, parallel to -nodes (empty = wire probes only)")
		readyMaxLag = flag.Int64("ready-max-lag", 0, "rotate replicas out of read routing when commit-clock lag exceeds this many records (0 = no gate)")
		probeEvery  = flag.Duration("probe-every", 200*time.Millisecond, "health-check interval")
		failAfter   = flag.Duration("fail-after", 2*time.Second, "declare a node dead after this long without a successful probe; primary death triggers failover")
		writeWait   = flag.Duration("write-wait", 10*time.Second, "how long a write waits for an electable primary before being refused")
		adminAddr   = flag.String("admin-addr", "", "admin HTTP listen address (/metrics, /healthz); empty = disabled")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	logger := obs.NewLogger(*logFormat, os.Stderr)
	slog.SetDefault(logger)

	if *nodes == "" {
		fatal(fmt.Errorf("-nodes is required"))
	}
	var urls []string
	if *readyURLs != "" {
		urls = strings.Split(*readyURLs, ",")
	}
	metrics := &telemetry.Metrics{}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Listen:      *listen,
		Nodes:       strings.Split(*nodes, ","),
		ReadyURLs:   urls,
		ReadyMaxLag: *readyMaxLag,
		ProbeEvery:  *probeEvery,
		FailAfter:   *failAfter,
		WriteWait:   *writeWait,
		Logger:      logger,
		Metrics:     metrics,
	})
	if err != nil {
		fatal(err)
	}

	if *adminAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			fmt.Fprint(w, obs.RenderCounters(metrics))
		})
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := http.Serve(aln, mux); err != nil {
				logger.Error("admin listener failed", "err", err.Error())
			}
		}()
		// Load-bearing stdout line: with -admin-addr :0 it is how callers
		// learn the bound port.
		fmt.Printf("lambdarouter admin listening on %s\n", aln.Addr())
	}

	if err := rt.Listen(); err != nil {
		fatal(err)
	}
	// Load-bearing stdout line: with -listen :0 it is how callers (the
	// chaos harness, scripts) learn the bound port.
	fmt.Printf("lambdarouter listening on %s\n", rt.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- rt.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	case got := <-sig:
		logger.Info("shutting down", "signal", got.String())
		rt.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lambdarouter:", err)
	os.Exit(1)
}
