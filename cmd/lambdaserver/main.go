// Command lambdaserver serves a lambdadb engine over TCP, speaking the
// length-prefixed text protocol of internal/server/wire. Each connection
// gets its own session (and so its own BEGIN/COMMIT state); statements run
// under the configured statement timeout and per-query memory budget, and
// are cancelled when their client disconnects.
//
// Usage:
//
//	lambdaserver -addr :5433
//	sqlshell -connect localhost:5433     # in another terminal
//
// SIGTERM or SIGINT drains gracefully: the server stops accepting, lets
// in-flight statements finish for -grace, then cancels them (their error
// responses are still delivered) and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/repl"
	"lambdadb/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":5433", "TCP listen address")
		image       = flag.String("db", "", "open this database snapshot image instead of starting empty")
		dataDir     = flag.String("data-dir", "", "durable data directory (write-ahead log + checkpoints); empty = in-memory")
		replicaOf   = flag.String("replica-of", "", "run as a read replica streaming from this primary (host:port); requires -data-dir")
		ckptEvery   = flag.Duration("checkpoint-interval", 0, "checkpoint the data directory this often (0 = manual CHECKPOINT only)")
		initScript  = flag.String("init", "", "execute this SQL script before accepting connections")
		workers     = flag.Int("workers", 0, "parallelism degree per query (0 = GOMAXPROCS)")
		maxConns    = flag.Int("max-conns", 0, "max concurrent connections (0 = unlimited)")
		stmtTimeout = flag.Duration("stmt-timeout", 0, "per-statement wall-clock timeout (0 = none)")
		memLimit    = flag.Int64("mem-limit", 0, "per-query memory budget in bytes (0 = unlimited)")
		grace       = flag.Duration("grace", server.DefaultDrainGrace, "how long a drain lets in-flight statements finish")
	)
	flag.Parse()

	var opts []engine.Option
	if *workers > 0 {
		opts = append(opts, engine.WithWorkers(*workers))
	}
	if *stmtTimeout > 0 {
		opts = append(opts, engine.WithStatementTimeout(*stmtTimeout))
	}
	if *memLimit > 0 {
		opts = append(opts, engine.WithMemoryLimit(*memLimit))
	}
	if *ckptEvery > 0 {
		opts = append(opts, engine.WithCheckpointInterval(*ckptEvery))
	}
	if *replicaOf != "" {
		if *dataDir == "" {
			fatal(fmt.Errorf("-replica-of requires -data-dir (the replica mirrors the primary's log there)"))
		}
		if *ckptEvery > 0 {
			fatal(fmt.Errorf("-replica-of and -checkpoint-interval are mutually exclusive (a replica checkpoints at the stream's segment boundaries)"))
		}
		opts = append(opts, engine.WithReadReplica(*replicaOf))
	}

	var db *engine.DB
	var err error
	switch {
	case *dataDir != "":
		if *image != "" {
			fatal(fmt.Errorf("-db and -data-dir are mutually exclusive"))
		}
		if db, err = engine.OpenDir(*dataDir, opts...); err != nil {
			fatal(err)
		}
		if summary, ok := db.RecoverySummary(); ok {
			fmt.Fprintf(os.Stderr, "lambdaserver: %s: %s\n", *dataDir, summary)
		}
	case *image != "":
		if db, err = engine.OpenFile(*image, opts...); err != nil {
			fatal(err)
		}
	default:
		db = engine.Open(opts...)
	}
	if *initScript != "" {
		script, err := os.ReadFile(*initScript)
		if err != nil {
			fatal(err)
		}
		if _, err := db.Exec(string(script)); err != nil {
			fatal(fmt.Errorf("init script %s: %w", *initScript, err))
		}
	}

	// Replication role: a durable primary accepts replica streams; a
	// replica mirrors its primary continuously and serves reads only.
	var replica *repl.Replica
	var replHandler server.ReplicationHandler
	switch {
	case *replicaOf != "":
		r, err := repl.StartReplica(db, *replicaOf, repl.ReplicaConfig{})
		if err != nil {
			fatal(err)
		}
		replica = r
		fmt.Fprintf(os.Stderr, "lambdaserver: read replica of %s\n", *replicaOf)
	case *dataDir != "":
		p, err := repl.NewPrimary(db, repl.PrimaryConfig{})
		if err != nil {
			fatal(err)
		}
		replHandler = p
	}

	srv := server.New(db, server.Config{
		Addr:        *addr,
		MaxConns:    *maxConns,
		DrainGrace:  *grace,
		ReplHandler: replHandler,
	})
	if err := srv.Listen(); err != nil {
		fatal(err)
	}
	// Stdout line is load-bearing: with -addr :0 it is how callers (the
	// smoke test, scripts) learn the bound port.
	fmt.Printf("lambdaserver listening on %s\n", srv.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "lambdaserver: %v received, draining (grace %v)\n", got, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace+30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		if err := <-serveErr; err != nil {
			fatal(err)
		}
		if replica != nil {
			replica.Close()
		}
		// Drained: every acknowledged commit is already fsynced; Close flushes
		// the log so the next start needs no replay.
		if err := db.Close(); err != nil {
			fatal(fmt.Errorf("close data directory: %w", err))
		}
		fmt.Fprintln(os.Stderr, "lambdaserver: drained cleanly")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lambdaserver:", err)
	os.Exit(1)
}
