// Command lambdaserver serves a lambdadb engine over TCP, speaking the
// length-prefixed text protocol of internal/server/wire. Each connection
// gets its own session (and so its own BEGIN/COMMIT state); statements run
// under the configured statement timeout and per-query memory budget, and
// are cancelled when their client disconnects.
//
// Usage:
//
//	lambdaserver -addr :5433 -admin-addr :8080
//	sqlshell -connect localhost:5433     # in another terminal
//
// The -admin-addr listener serves the operator endpoints: Prometheus
// /metrics, /healthz, /readyz (recovery- and replication-aware), and
// /debug/pprof. It is bound before recovery starts, so /readyz truthfully
// answers 503 while the write-ahead log replays.
//
// SIGTERM or SIGINT drains gracefully: /readyz starts failing, the server
// stops accepting, lets in-flight statements finish for -grace, then
// cancels them (their error responses are still delivered) and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lambdadb/internal/cluster"
	"lambdadb/internal/engine"
	"lambdadb/internal/obs"
	"lambdadb/internal/repl"
	"lambdadb/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":5433", "TCP listen address")
		adminAddr   = flag.String("admin-addr", "", "admin HTTP listen address (/metrics, /healthz, /readyz, /debug/pprof); empty = disabled")
		image       = flag.String("db", "", "open this database snapshot image instead of starting empty")
		dataDir     = flag.String("data-dir", "", "durable data directory (write-ahead log + checkpoints); empty = in-memory")
		replicaOf   = flag.String("replica-of", "", "run as a read replica streaming from this primary (host:port); requires -data-dir")
		ckptEvery   = flag.Duration("checkpoint-interval", 0, "checkpoint the data directory this often (0 = manual CHECKPOINT only)")
		initScript  = flag.String("init", "", "execute this SQL script before accepting connections")
		workers     = flag.Int("workers", 0, "parallelism degree per query (0 = GOMAXPROCS)")
		maxConns    = flag.Int("max-conns", 0, "max concurrent connections (0 = unlimited)")
		stmtTimeout = flag.Duration("stmt-timeout", 0, "per-statement wall-clock timeout (0 = none)")
		memLimit    = flag.Int64("mem-limit", 0, "per-query memory budget in bytes (0 = unlimited)")
		grace       = flag.Duration("grace", server.DefaultDrainGrace, "how long a drain lets in-flight statements finish")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		readyMaxLag = flag.Int64("ready-max-lag", 0, "replica /readyz fails when commit-clock lag exceeds this many records (0 = no lag gate)")
		syncReps    = flag.Int("sync-replicas", 0, "acknowledge a commit only after this many replicas durably acked it (0 = asynchronous replication)")
		syncTimeout = flag.Duration("sync-timeout", 0, "how long a semi-synchronous commit waits for replica acks before erroring (0 = 5s)")
		slowLog     = flag.String("slow-log", "", "append slow statements as JSON lines to this file (requires -slow-threshold)")
		slowThresh  = flag.Duration("slow-threshold", 0, "statements at least this slow land in the slow-query log")
		slowMax     = flag.Int64("slow-log-max-bytes", 64<<20, "rotate the slow-query log when it reaches this size (0 = never)")
		slowKeep    = flag.Int("slow-log-keep", 3, "rotated slow-query log files to keep")
	)
	flag.Parse()

	logger := obs.NewLogger(*logFormat, os.Stderr)
	slog.SetDefault(logger)

	// The admin endpoint binds before the engine opens, so /healthz answers
	// immediately and /readyz reports "recovering" during WAL replay.
	var admin *obs.Admin
	if *adminAddr != "" {
		admin = obs.NewAdmin(obs.AdminConfig{Addr: *adminAddr, MaxReplicaLag: *readyMaxLag})
		if err := admin.Listen(); err != nil {
			fatal(err)
		}
		go func() {
			if err := admin.Serve(); err != nil {
				logger.Error("admin listener failed", "err", err.Error())
			}
		}()
		// Stdout line is load-bearing, like the SQL listener's below: with
		// -admin-addr :0 it is how the smoke test learns the bound port.
		fmt.Printf("lambdaserver admin listening on %s\n", admin.Addr())
	}

	opts := []engine.Option{engine.WithLogger(logger)}
	if *workers > 0 {
		opts = append(opts, engine.WithWorkers(*workers))
	}
	if *stmtTimeout > 0 {
		opts = append(opts, engine.WithStatementTimeout(*stmtTimeout))
	}
	if *memLimit > 0 {
		opts = append(opts, engine.WithMemoryLimit(*memLimit))
	}
	if *ckptEvery > 0 {
		opts = append(opts, engine.WithCheckpointInterval(*ckptEvery))
	}
	if *replicaOf != "" {
		if *dataDir == "" {
			fatal(fmt.Errorf("-replica-of requires -data-dir (the replica mirrors the primary's log there)"))
		}
		if *ckptEvery > 0 {
			fatal(fmt.Errorf("-replica-of and -checkpoint-interval are mutually exclusive (a replica checkpoints at the stream's segment boundaries)"))
		}
		opts = append(opts, engine.WithReadReplica(*replicaOf))
	}
	if *slowLog != "" {
		if *slowThresh <= 0 {
			fatal(fmt.Errorf("-slow-log requires a positive -slow-threshold"))
		}
		rf, err := obs.OpenRotatingFile(*slowLog, *slowMax, *slowKeep)
		if err != nil {
			fatal(fmt.Errorf("open slow-query log: %w", err))
		}
		defer rf.Close()
		opts = append(opts, engine.WithSlowQueryThreshold(*slowThresh, rf))
	}

	var db *engine.DB
	var err error
	switch {
	case *dataDir != "":
		if *image != "" {
			fatal(fmt.Errorf("-db and -data-dir are mutually exclusive"))
		}
		if db, err = engine.OpenDir(*dataDir, opts...); err != nil {
			fatal(err)
		}
		if summary, ok := db.RecoverySummary(); ok {
			fmt.Fprintf(os.Stderr, "lambdaserver: %s: %s\n", *dataDir, summary)
		}
	case *image != "":
		if db, err = engine.OpenFile(*image, opts...); err != nil {
			fatal(err)
		}
	default:
		db = engine.Open(opts...)
	}
	if *initScript != "" {
		script, err := os.ReadFile(*initScript)
		if err != nil {
			fatal(err)
		}
		if _, err := db.Exec(string(script)); err != nil {
			fatal(fmt.Errorf("init script %s: %w", *initScript, err))
		}
	}
	if admin != nil {
		admin.SetDB(db) // recovery (if any) is complete
	}

	// Replication role: a durable node joins the cluster role machinery —
	// it starts as a replica when -replica-of is set, else as a primary,
	// and can change roles at runtime via PROMOTE / FOLLOW (issued by an
	// operator or lambdarouter's automatic failover).
	var node *cluster.Node
	var replHandler server.ReplicationHandler
	if *dataDir != "" {
		n, err := cluster.NewNode(db, *replicaOf, cluster.NodeConfig{
			Replica: repl.ReplicaConfig{Logger: logger},
			Primary: repl.PrimaryConfig{
				Logger:       logger,
				SyncReplicas: *syncReps,
				SyncTimeout:  *syncTimeout,
			},
			Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		node = n
		replHandler = n
		if *replicaOf != "" {
			logger.Info("serving as read replica", "primary", *replicaOf)
		}
	}

	srv := server.New(db, server.Config{
		Addr:        *addr,
		MaxConns:    *maxConns,
		DrainGrace:  *grace,
		ReplHandler: replHandler,
		Logger:      logger,
	})
	if err := srv.Listen(); err != nil {
		fatal(err)
	}
	// Readiness flips before the announcement so anyone who learns the
	// address from stdout sees /readyz agree.
	if admin != nil {
		admin.SetServing(true)
	}
	// Stdout line is load-bearing: with -addr :0 it is how callers (the
	// smoke test, scripts) learn the bound port.
	fmt.Printf("lambdaserver listening on %s\n", srv.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	case got := <-sig:
		if admin != nil {
			admin.SetDraining() // /readyz fails first, so routers stop sending
		}
		logger.Info("draining", "signal", got.String(), "grace", grace.String())
		ctx, cancel := context.WithTimeout(context.Background(), *grace+30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		if err := <-serveErr; err != nil {
			fatal(err)
		}
		if node != nil {
			node.Close()
		}
		// Drained: every acknowledged commit is already fsynced; Close flushes
		// the log so the next start needs no replay.
		if err := db.Close(); err != nil {
			fatal(fmt.Errorf("close data directory: %w", err))
		}
		if admin != nil {
			admin.Close()
		}
		logger.Info("drained cleanly")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lambdaserver:", err)
	os.Exit(1)
}
