// Command datagen writes the paper's synthetic datasets as CSV, so
// external tools can be run on identical inputs (the layer-1 "database as
// data storage" workflow the paper contrasts against).
//
// Usage:
//
//	datagen -kind vectors -n 100000 -d 10 -o points.csv
//	datagen -kind labeled -n 100000 -d 10 -classes 2 -o train.csv
//	datagen -kind graph -vertices 11000 -edges 452000 -o edges.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"lambdadb/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "vectors", "vectors | labeled | graph")
		n        = flag.Int("n", 100_000, "number of tuples (vectors/labeled)")
		d        = flag.Int("d", 10, "dimensions (vectors/labeled)")
		classes  = flag.Int("classes", 2, "label count (labeled)")
		vertices = flag.Int("vertices", 11_000, "vertex count (graph)")
		edges    = flag.Int("edges", 452_000, "directed edge count (graph)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	switch *kind {
	case "vectors":
		writeHeader(w, workload.VectorColumnNames(*d))
		data := workload.UniformVectors(*n, *d, *seed)
		for i := 0; i < *n; i++ {
			writeFloatRow(w, data[i**d:(i+1)**d], nil)
		}
	case "labeled":
		writeHeader(w, append(workload.VectorColumnNames(*d), "label"))
		data := workload.UniformVectors(*n, *d, *seed)
		labels := workload.UniformLabels(*n, *classes, *seed+1)
		for i := 0; i < *n; i++ {
			writeFloatRow(w, data[i**d:(i+1)**d], &labels[i])
		}
	case "graph":
		writeHeader(w, []string{"src", "dest"})
		g := workload.SocialGraph(*vertices, *edges, *seed)
		for i := range g.Src {
			fmt.Fprintf(w, "%d,%d\n", g.Src[i], g.Dst[i])
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -kind %q\n", *kind)
		os.Exit(2)
	}
}

func writeHeader(w *bufio.Writer, cols []string) {
	for i, c := range cols {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(c)
	}
	w.WriteByte('\n')
}

func writeFloatRow(w *bufio.Writer, vals []float64, label *int64) {
	for i, v := range vals {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	if label != nil {
		fmt.Fprintf(w, ",%d", *label)
	}
	w.WriteByte('\n')
}
