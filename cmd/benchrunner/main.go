// Command benchrunner regenerates the paper's evaluation artifacts: every
// figure series and the Table 1 grid, at a configurable scale.
//
// Usage:
//
//	benchrunner -exp all                    # every experiment, default scale
//	benchrunner -exp fig4-tuples            # one experiment
//	benchrunner -exp fig5-pagerank -max-edges 46000000   # paper-size graph
//	benchrunner -list                       # list experiment ids
//
// Output is the fixed-width tables embedded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lambdadb/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		maxTuples  = flag.Int("max-tuples", bench.DefaultScale.MaxTuples, "cap on tuple-count sweeps")
		baseTuples = flag.Int("base-tuples", bench.DefaultScale.BaseTuples, "fixed n for dimension/cluster sweeps (0 = min(max-tuples, 4M))")
		maxEdges   = flag.Int("max-edges", bench.DefaultScale.MaxEdges, "cap on PageRank graph size (directed edges)")
		systems    = flag.String("systems", "", "comma-separated subset of systems (default: all)")
		verbose    = flag.Bool("v", false, "print per-measurement progress")
		jsonPath   = flag.String("json", "", "also write a machine-readable report (per-operator stats, host info) to this path, e.g. BENCH_$(hostname).json")
	)
	flag.Parse()

	scale := bench.Scale{MaxTuples: *maxTuples, BaseTuples: *baseTuples, MaxEdges: *maxEdges}
	if *systems != "" {
		scale.Systems = strings.Split(*systems, ",")
	}

	experiments := bench.Experiments(scale)
	if *list {
		for _, id := range bench.ExperimentIDs(scale) {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = bench.ExperimentIDs(scale)
	} else {
		if _, ok := experiments[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	host := bench.Host()
	fmt.Printf("host: %s/%s %s, %d visible core(s), GOMAXPROCS=%d\n",
		host.OS, host.Arch, host.GoVersion, host.VisibleCores, host.GoMaxProcs)
	if host.VisibleCores == 1 {
		fmt.Println("note: single-core host — parallel scaling numbers are invalid here" +
			" (they measure coordination overhead); reports carry scaling_valid=false")
	}

	var progress *os.File
	if *verbose {
		progress = os.Stderr
	}
	var tables []*bench.Table
	for _, id := range ids {
		table, err := experiments[id](progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		table.Print(os.Stdout)
		tables = append(tables, table)
	}
	if *jsonPath != "" {
		if err := bench.NewReport(scale, tables).WriteJSON(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}
